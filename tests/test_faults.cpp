// Fault-injection unit tests: Gilbert–Elliott burst-loss statistics,
// blackhole windows, delay spikes, duplicate delivery, the zero-draw
// guarantee of an empty plan, retry-policy determinism, and the validation
// rules for fault/link/scan knobs.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "faults/faults.hpp"
#include "faults/retry_policy.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"

namespace spinscope::faults {
namespace {

using netsim::Datagram;
using util::Duration;
using util::Rng;
using util::TimePoint;

TEST(GilbertElliott, StationaryLossAndBurstLengthMatchTheory) {
    FaultPlan plan;
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.01;
    plan.burst_loss.p_bad_to_good = 0.25;
    plan.burst_loss.loss_good = 0.0;
    plan.burst_loss.loss_bad = 1.0;
    FaultInjector injector{plan, Rng{0x6e11}};

    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        (void)injector.on_send(TimePoint::origin());
    }
    const auto& stats = injector.stats();

    // Stationary loss = pi_bad * loss_bad, pi_bad = p_gb / (p_gb + p_bg).
    const double pi_bad = 0.01 / (0.01 + 0.25);
    const double loss = static_cast<double>(stats.burst_dropped) / n;
    EXPECT_NEAR(loss, pi_bad, 0.20 * pi_bad) << "stationary loss off by > 20 %";

    // With loss_bad = 1 every bad-state datagram drops, so drops per burst
    // entry estimate the mean sojourn 1 / p_bad_to_good = 4.
    ASSERT_GT(stats.burst_entries, 100u);
    const double mean_burst =
        static_cast<double>(stats.burst_dropped) / static_cast<double>(stats.burst_entries);
    EXPECT_NEAR(mean_burst, 4.0, 0.8);
}

TEST(GilbertElliott, FixedSeedIsDeterministic) {
    FaultPlan plan;
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.05;
    FaultInjector a{plan, Rng{7}};
    FaultInjector b{plan, Rng{7}};
    for (int i = 0; i < 5'000; ++i) {
        const auto va = a.on_send(TimePoint::origin());
        const auto vb = b.on_send(TimePoint::origin());
        ASSERT_EQ(va.drop, vb.drop);
    }
    EXPECT_EQ(a.stats().burst_dropped, b.stats().burst_dropped);
    EXPECT_EQ(a.stats().burst_entries, b.stats().burst_entries);
}

TEST(Faults, BlackholeWindowDropsExactlyInside) {
    FaultPlan plan;
    plan.blackholes.push_back({TimePoint::origin() + Duration::millis(10),
                               TimePoint::origin() + Duration::millis(20)});
    FaultInjector injector{plan, Rng{1}};

    EXPECT_FALSE(injector.on_send(TimePoint::origin() + Duration::millis(9)).drop);
    const auto at_start = injector.on_send(TimePoint::origin() + Duration::millis(10));
    EXPECT_TRUE(at_start.drop);
    EXPECT_TRUE(at_start.blackholed);
    EXPECT_TRUE(injector.on_send(TimePoint::origin() + Duration::millis(19)).drop);
    // End is exclusive.
    EXPECT_FALSE(injector.on_send(TimePoint::origin() + Duration::millis(20)).drop);
    EXPECT_EQ(injector.stats().blackhole_dropped, 2u);
    EXPECT_EQ(injector.stats().burst_dropped, 0u);
}

TEST(Faults, DelaySpikesFireOnceEachInTimeOrder) {
    FaultPlan plan;
    // Declared out of order on purpose; the injector sorts.
    plan.delay_spikes.push_back({TimePoint::origin() + Duration::millis(30), Duration::millis(7)});
    plan.delay_spikes.push_back({TimePoint::origin() + Duration::millis(10), Duration::millis(3)});
    FaultInjector injector{plan, Rng{1}};

    EXPECT_TRUE(injector.on_send(TimePoint::origin() + Duration::millis(5)).extra_delay.is_zero());
    // First datagram at/after the first spike absorbs it; the next does not.
    EXPECT_EQ(injector.on_send(TimePoint::origin() + Duration::millis(12)).extra_delay,
              Duration::millis(3));
    EXPECT_TRUE(
        injector.on_send(TimePoint::origin() + Duration::millis(13)).extra_delay.is_zero());
    EXPECT_EQ(injector.on_send(TimePoint::origin() + Duration::millis(31)).extra_delay,
              Duration::millis(7));
    EXPECT_EQ(injector.stats().delay_spiked, 2u);
}

TEST(Faults, DuplicateProbabilityOneDuplicatesEverything) {
    FaultPlan plan;
    plan.duplicate_probability = 1.0;
    FaultInjector injector{plan, Rng{1}};
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(injector.on_send(TimePoint::origin()).duplicate);
    }
    EXPECT_EQ(injector.stats().duplicated, 10u);
}

TEST(Faults, PlanValidationRejectsNanAndInvertedWindows) {
    FaultPlan nan_plan;
    nan_plan.burst_loss.loss_bad = std::nan("");
    EXPECT_THROW(nan_plan.validate(), std::invalid_argument);

    FaultPlan clamped;
    clamped.duplicate_probability = 1.5;
    clamped.validate();
    EXPECT_EQ(clamped.duplicate_probability, 1.0);

    FaultPlan inverted;
    inverted.blackholes.push_back({TimePoint::origin() + Duration::millis(5),
                                   TimePoint::origin() + Duration::millis(1)});
    EXPECT_THROW(inverted.validate(), std::invalid_argument);

    FaultPlan negative_spike;
    negative_spike.delay_spikes.push_back({TimePoint::origin(), Duration::millis(-1)});
    EXPECT_THROW(negative_spike.validate(), std::invalid_argument);
}

// --- link integration -------------------------------------------------------

netsim::LinkConfig jittery_link() {
    netsim::LinkConfig cfg;
    cfg.base_delay = Duration::millis(10);
    cfg.jitter_scale = Duration::millis(2);
    cfg.loss_probability = 0.05;
    cfg.reorder_probability = 0.02;
    return cfg;
}

std::vector<std::int64_t> arrival_times(bool attach_empty_plan) {
    netsim::Simulator sim;
    netsim::Link link{sim, jittery_link(), Rng{0x11aa}};
    if (attach_empty_plan) link.attach_faults(FaultPlan{}, Rng{0x77});
    std::vector<std::int64_t> arrivals;
    link.set_receiver([&](spinscope::bytes::ConstByteSpan) {
        arrivals.push_back((sim.now() - TimePoint::origin()).count_nanos());
    });
    for (int i = 0; i < 500; ++i) {
        sim.schedule_at(TimePoint::origin() + Duration::micros(100 * i),
                        [&link] { link.send(Datagram(800, 0x5a)); }, "test.send");
    }
    sim.run();
    return arrivals;
}

TEST(Faults, EmptyPlanAttachedIsByteIdenticalToNoPlan) {
    // The injector draws no randomness for an empty plan, so the link's own
    // loss/jitter/reorder draws — and thus the delivery schedule — are
    // identical whether or not the plan is attached.
    EXPECT_EQ(arrival_times(false), arrival_times(true));
}

TEST(Faults, LinkCountsFaultDropsAndDuplicates) {
    netsim::Simulator sim;
    netsim::LinkConfig cfg;
    cfg.base_delay = Duration::millis(1);
    netsim::Link link{sim, cfg, Rng{3}};
    FaultPlan plan;
    plan.duplicate_probability = 1.0;
    link.attach_faults(plan, Rng{4});
    std::uint64_t delivered = 0;
    link.set_receiver([&](spinscope::bytes::ConstByteSpan) { ++delivered; });
    for (int i = 0; i < 20; ++i) link.send(Datagram(100, 1));
    sim.run();
    EXPECT_EQ(delivered, 40u);  // every datagram delivered twice
    EXPECT_EQ(link.stats().fault_duplicated, 20u);
    EXPECT_EQ(link.stats().delivered, 40u);

    telemetry::MetricsRegistry registry;
    link.publish_metrics(registry, "netsim.link.test");
    EXPECT_NE(registry.find_counter("netsim.link.test.fault.duplicated"), nullptr);
}

TEST(Faults, LinkBlackholeIsTotalOutage) {
    netsim::Simulator sim;
    netsim::LinkConfig cfg;
    cfg.base_delay = Duration::millis(1);
    netsim::Link link{sim, cfg, Rng{3}};
    FaultPlan plan;
    plan.blackholes.push_back({TimePoint::origin() + Duration::millis(5),
                               TimePoint::origin() + Duration::millis(15)});
    link.attach_faults(plan, Rng{4});
    std::uint64_t delivered = 0;
    link.set_receiver([&](spinscope::bytes::ConstByteSpan) { ++delivered; });
    for (int i = 0; i < 20; ++i) {
        sim.schedule_at(TimePoint::origin() + Duration::millis(i),
                        [&link] { link.send(Datagram(100, 1)); }, "test.send");
    }
    sim.run();
    EXPECT_EQ(link.stats().fault_blackhole_dropped, 10u);  // t = 5..14
    EXPECT_EQ(delivered, 10u);
}

// --- LinkConfig validation --------------------------------------------------

TEST(LinkValidation, NanProbabilityThrowsOutOfRangeClamps) {
    netsim::LinkConfig nan_cfg;
    nan_cfg.loss_probability = std::nan("");
    EXPECT_THROW(netsim::validate_link_config(nan_cfg), std::invalid_argument);

    netsim::LinkConfig clamp_cfg;
    clamp_cfg.loss_probability = 2.5;
    clamp_cfg.reorder_probability = -0.5;
    netsim::validate_link_config(clamp_cfg);
    EXPECT_EQ(clamp_cfg.loss_probability, 1.0);
    EXPECT_EQ(clamp_cfg.reorder_probability, 0.0);
}

TEST(LinkValidation, InvertedReorderRangeThrowsFromLinkConstructor) {
    netsim::LinkConfig cfg;
    cfg.reorder_extra_min = Duration::millis(5);
    cfg.reorder_extra_max = Duration::millis(1);
    netsim::Simulator sim;
    EXPECT_THROW((netsim::Link{sim, cfg, Rng{1}}), std::invalid_argument);
}

// --- retry policy -----------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsAndCapsDeterministically) {
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff = Duration::millis(200);
    policy.multiplier = 2.0;
    policy.max_backoff = Duration::seconds(1);
    policy.full_jitter = false;

    Rng rng{1};  // unused without jitter
    EXPECT_EQ(policy.backoff_delay(1, rng), Duration::millis(200));
    EXPECT_EQ(policy.backoff_delay(2, rng), Duration::millis(400));
    EXPECT_EQ(policy.backoff_delay(3, rng), Duration::millis(800));
    EXPECT_EQ(policy.backoff_delay(4, rng), Duration::seconds(1));   // capped
    EXPECT_EQ(policy.backoff_delay(40, rng), Duration::seconds(1));  // no overflow
}

TEST(RetryPolicy, FullJitterStaysInRangeAndIsSeedDeterministic) {
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.full_jitter = true;
    Rng a{42};
    Rng b{42};
    for (int k = 1; k <= 20; ++k) {
        const Duration da = policy.backoff_delay(k, a);
        const Duration db = policy.backoff_delay(k, b);
        EXPECT_EQ(da, db) << "same seed must give the same backoff";
        EXPECT_FALSE(da.is_negative());
        EXPECT_LE(da.as_ms(), policy.max_backoff.as_ms());
    }
}

TEST(RetryPolicy, ShouldRetrySemanticsAndValidation) {
    RetryPolicy policy;
    policy.max_attempts = 3;
    EXPECT_TRUE(policy.should_retry(0, false));
    EXPECT_TRUE(policy.should_retry(1, false));
    EXPECT_FALSE(policy.should_retry(2, false));  // attempts exhausted
    EXPECT_FALSE(policy.should_retry(0, true));   // success never retries

    RetryPolicy single;  // the default is one attempt, i.e. no retries
    EXPECT_FALSE(single.should_retry(0, false));

    RetryPolicy bad;
    bad.max_attempts = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.max_attempts = 2;
    bad.multiplier = 0.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.multiplier = std::nan("");
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace spinscope::faults
