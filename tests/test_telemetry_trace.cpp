// Flight-recorder suite (DESIGN.md §12): the Chrome trace-event writer, the
// resource probes and the campaign timeline they record.
//
// The contract under test: the sim trace of a campaign is BYTE-IDENTICAL for
// every thread count, and a killed-and-resumed campaign re-drives the same
// spans with only the `replayed` flag flipped — the flight recorder is part
// of the determinism contract, not a best-effort log. This TU also includes
// telemetry/alloc_interpose.hpp (its one allowed TU in this binary), so the
// allocation-accounting half of the probes is exercised for real.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "scanner/campaign.hpp"
#include "telemetry/alloc_interpose.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/resource.hpp"
#include "telemetry/trace.hpp"
#include "web/population.hpp"

namespace spinscope::telemetry {
namespace {

// --- Minimal JSON validator --------------------------------------------------
// Just enough of RFC 8259 to reject structurally torn output; no number
// pedantry beyond strtod, no \u escapes (the writer never emits them).

struct JsonParser {
    const std::string& s;
    std::size_t pos = 0;

    void skip_ws() {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                                  s[pos] == '\r')) {
            ++pos;
        }
    }
    bool literal(const char* lit) {
        const std::size_t n = std::string::traits_type::length(lit);
        if (s.compare(pos, n, lit) != 0) return false;
        pos += n;
        return true;
    }
    bool string() {
        if (pos >= s.size() || s[pos] != '"') return false;
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size()) return false;
            }
            ++pos;
        }
        if (pos >= s.size()) return false;
        ++pos;  // closing quote
        return true;
    }
    bool number() {
        const char* begin = s.c_str() + pos;
        char* end = nullptr;
        (void)std::strtod(begin, &end);
        if (end == begin) return false;
        pos += static_cast<std::size_t>(end - begin);
        return true;
    }
    bool value() {
        skip_ws();
        if (pos >= s.size()) return false;
        switch (s[pos]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }
    bool object() {
        ++pos;  // '{'
        skip_ws();
        if (pos < s.size() && s[pos] == '}') return ++pos, true;
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (pos >= s.size() || s[pos] != ':') return false;
            ++pos;
            if (!value()) return false;
            skip_ws();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != '}') return false;
        ++pos;
        return true;
    }
    bool array() {
        ++pos;  // '['
        skip_ws();
        if (pos < s.size() && s[pos] == ']') return ++pos, true;
        while (true) {
            if (!value()) return false;
            skip_ws();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (pos >= s.size() || s[pos] != ']') return false;
        ++pos;
        return true;
    }
};

bool is_valid_json(const std::string& text) {
    JsonParser p{text};
    if (!p.value()) return false;
    p.skip_ws();
    return p.pos == text.size();
}

// --- Trace-event extraction --------------------------------------------------
// Splits "traceEvents":[...] into its top-level objects (quote-aware, so an
// escaped brace inside an error-string arg cannot desync the walk) and pulls
// the fields the ordering assertions need.

struct ParsedEvent {
    char ph = '?';
    int tid = -1;
    double ts = -1.0;  ///< microseconds; -1 for metadata events (no ts)
    std::string raw;
};

std::vector<ParsedEvent> parse_events(const std::string& json) {
    std::vector<ParsedEvent> events;
    const std::size_t array_at = json.find("\"traceEvents\":[");
    EXPECT_NE(array_at, std::string::npos);
    if (array_at == std::string::npos) return events;

    std::size_t depth = 0;
    std::size_t start = 0;
    bool in_string = false;
    for (std::size_t i = array_at; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{') {
            if (++depth == 1) start = i;
        } else if (c == '}') {
            if (depth-- == 1) {
                ParsedEvent event;
                event.raw = json.substr(start, i - start + 1);
                const auto field = [&event](const char* key) -> const char* {
                    const std::size_t at = event.raw.find(key);
                    return at == std::string::npos
                               ? nullptr
                               : event.raw.c_str() + at +
                                     std::string::traits_type::length(key);
                };
                if (const char* ph = field("\"ph\":\"")) event.ph = *ph;
                if (const char* tid = field("\"tid\":")) event.tid = std::atoi(tid);
                if (const char* ts = field("\"ts\":")) event.ts = std::atof(ts);
                events.push_back(std::move(event));
            }
        } else if (c == ']' && depth == 0 && i > array_at + 14) {
            break;
        }
    }
    return events;
}

// --- Campaign harness --------------------------------------------------------

// ~110 domains at seed 1 — 7 chunks at the default chunk_domains=16 (same
// corpus as the journal suite, so chunk boundaries land where retries do).
web::Population tiny_population() { return web::Population{{2'000'000.0, 1}}; }

scanner::ScanOptions traced_options(unsigned threads) {
    scanner::ScanOptions options;
    options.threads = threads;
    options.retry.max_attempts = 2;  // exercise retry instants and backoff spans
    return options;
}

/// Runs a campaign with a recorder attached and returns the two trace JSONs.
struct TracedRun {
    std::string sim;
    std::string wall;
    scanner::CampaignStats stats;
    std::string deterministic_telemetry;
};

TracedRun run_traced(const web::Population& population, const scanner::ScanOptions& options,
                     bool resume = false) {
    scanner::Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    TraceRecorder trace;
    campaign.set_trace(&trace);
    const auto sink = [](const web::Domain&, scanner::DomainScan&&) {};
    TracedRun result;
    result.stats = resume ? campaign.resume(sink) : campaign.run(sink);
    result.sim = trace.to_json(TraceClock::sim);
    result.wall = trace.to_json(TraceClock::wall);
    result.deterministic_telemetry = telemetry::deterministic_csv(registry);
    return result;
}

class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_trace_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

// --- Recorder unit tests -----------------------------------------------------

TEST(TraceArgTest, FormatsScalars) {
    EXPECT_EQ(TraceArg::num("n", std::uint64_t{42}).value, "42");
    EXPECT_EQ(TraceArg::num("f", 1.5).value, "1.5");
    EXPECT_EQ(TraceArg::str("s", "plain").value, "\"plain\"");
    // Quotes and backslashes escape; control characters are dropped, so an
    // arbitrary scan-error string can never tear the JSON.
    EXPECT_EQ(TraceArg::str("s", "a\"b\\c\nd").value, "\"a\\\"b\\\\cd\"");
}

TEST(TraceRecorderTest, LaneTidsFollowRegistrationOrder) {
    TraceRecorder trace;
    EXPECT_EQ(trace.lane(TraceClock::sim, "merge"), 0);
    EXPECT_EQ(trace.lane(TraceClock::sim, "aux"), 1);
    EXPECT_EQ(trace.lane(TraceClock::sim, "merge"), 0);  // lookup, not re-register
    // The two clocks have independent tid spaces.
    EXPECT_EQ(trace.lane(TraceClock::wall, "merge"), 0);
    EXPECT_EQ(trace.wall_lane_for_current_thread("worker"), 1);
    EXPECT_EQ(trace.wall_lane_for_current_thread("worker"), 1);  // sticky per thread
}

TEST(TraceRecorderTest, EmitsWellFormedChromeTraceJson) {
    TraceRecorder trace;
    const int lane = trace.lane(TraceClock::sim, "merge (chunk timeline)");
    trace.complete(TraceClock::sim, lane, "chunk", 1000, 500,
                   {TraceArg::num("chunk", std::uint64_t{0}),
                    TraceArg::str("note", "with \"quotes\"")});
    trace.instant(TraceClock::sim, lane, "retry", 1200,
                  {TraceArg::num("domain", std::uint64_t{7})});
    trace.counter(TraceClock::sim, "domains", 1500, 16.0);
    trace.complete(TraceClock::wall, trace.lane(TraceClock::wall, "worker 0"),
                   "scan chunk", 0, 2000);

    EXPECT_EQ(trace.event_count(TraceClock::sim), 3u);
    EXPECT_EQ(trace.event_count(TraceClock::wall), 1u);

    for (const TraceClock clock : {TraceClock::sim, TraceClock::wall}) {
        const std::string json = trace.to_json(clock);
        EXPECT_TRUE(is_valid_json(json)) << json;
        EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
        // Metadata (process/thread names) precedes the first real event.
        EXPECT_LT(json.find("process_name"), json.find("\"ph\":\"X\""));
        EXPECT_NE(json.find("thread_sort_index"), std::string::npos);
    }
    const std::string sim = trace.to_json(TraceClock::sim);
    // Timestamps are <ns/1000>.<frac3> microseconds, formatted from integers.
    EXPECT_NE(sim.find("\"ts\":1.000"), std::string::npos);
    EXPECT_NE(sim.find("\"dur\":0.500"), std::string::npos);
    EXPECT_NE(sim.find("\"s\":\"t\""), std::string::npos);  // instant scope
    EXPECT_NE(sim.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceRecorderTest, WallSidecarPathDerivation) {
    EXPECT_EQ(TraceRecorder::wall_sidecar_path("campaign.trace.json"),
              "campaign.trace.wall.json");
    EXPECT_EQ(TraceRecorder::wall_sidecar_path("trace"), "trace.wall.json");
    EXPECT_EQ(TraceRecorder::wall_sidecar_path("dir/run.json"), "dir/run.wall.json");
}

TEST_F(TraceTest, WriteEmitsSimFileAndWallSidecar) {
    TraceRecorder trace;
    trace.complete(TraceClock::sim, trace.lane(TraceClock::sim, "merge"), "chunk", 0, 10);
    trace.instant(TraceClock::wall, trace.lane(TraceClock::wall, "worker 0"), "go", 5);

    const std::string path = (dir_ / "campaign.trace.json").string();
    ASSERT_TRUE(trace.write(path));
    for (const std::string& file : {path, TraceRecorder::wall_sidecar_path(path)}) {
        std::ifstream in{file, std::ios::binary};
        ASSERT_TRUE(in.good()) << file;
        std::string text{std::istreambuf_iterator<char>{in},
                         std::istreambuf_iterator<char>{}};
        ASSERT_FALSE(text.empty()) << file;
        EXPECT_EQ(text.back(), '\n');
        text.pop_back();
        EXPECT_TRUE(is_valid_json(text)) << file;
    }
}

TEST(TraceRecorderTest, BookkeepingMetricsStayOutOfTheDeterministicView) {
    TraceRecorder trace;
    trace.instant(TraceClock::sim, trace.lane(TraceClock::sim, "merge"), "retry", 1);
    MetricsRegistry registry;
    registry.counter("scanner.connections").add(5);
    trace.publish_metrics(registry);

    ASSERT_NE(registry.find_counter("trace.events_sim"), nullptr);
    EXPECT_EQ(registry.find_counter("trace.events_sim")->value(), 1u);
    ASSERT_NE(registry.find_counter("trace.lanes"), nullptr);

    // trace.* counts depend on lane geometry and wall events, obs.* on the
    // host — both are excluded from the determinism contract.
    EXPECT_TRUE(is_chunk_geometry_metric("trace.events_sim"));
    EXPECT_TRUE(is_chunk_geometry_metric("trace.lanes"));
    EXPECT_TRUE(is_recovery_metric("obs.resource.campaign.wall_seconds"));
    EXPECT_FALSE(is_chunk_geometry_metric("scanner.connections"));
    EXPECT_FALSE(is_recovery_metric("scanner.connections"));

    const std::string csv = deterministic_csv(registry);
    EXPECT_EQ(csv.find("trace."), std::string::npos);
    EXPECT_NE(csv.find("scanner.connections"), std::string::npos);
}

// --- Resource probes (interposer lives in THIS translation unit) ------------

TEST(ResourceProbeTest, AllocInterposerCountsThisBinary) {
    ASSERT_TRUE(alloc::active());
    const AllocSnapshot before;
    {
        std::vector<char> block(1 << 16);
        block[0] = 1;
        ASSERT_EQ(block[0], 1);
    }
    EXPECT_GE(before.count_since(), 1u);
    EXPECT_GE(before.bytes_since(), std::uint64_t{1} << 16);
}

TEST(ResourceProbeTest, PublishesObsGaugesOutsideTheDeterministicView) {
    ResourceProbe probe{"unit"};
    std::vector<char> block(1 << 16);
    block[0] = 1;
    const ResourceProbe::Report report = probe.sample();
    EXPECT_TRUE(report.alloc_active);
    EXPECT_GE(report.allocs, 1u);
    EXPECT_GE(report.alloc_bytes, std::uint64_t{1} << 16);
    EXPECT_GE(report.wall_seconds, 0.0);
#if defined(__linux__)
    EXPECT_GT(report.peak_rss, 0u);
    EXPECT_GT(current_rss_bytes(), 0u);
#endif

    MetricsRegistry registry;
    registry.counter("scanner.connections").add(1);
    probe.publish(registry);
    for (const char* name :
         {"obs.resource.unit.wall_seconds", "obs.resource.unit.peak_rss_bytes",
          "obs.resource.unit.allocs", "obs.resource.unit.alloc_bytes"}) {
        EXPECT_NE(registry.find_gauge(name), nullptr) << name;
        EXPECT_TRUE(is_recovery_metric(name)) << name;
    }
    EXPECT_EQ(deterministic_csv(registry).find("obs."), std::string::npos);
}

// --- Campaign timeline -------------------------------------------------------

TEST(CampaignTraceTest, SimTraceIsByteIdenticalAcrossThreadCounts) {
    const web::Population population = tiny_population();
    const TracedRun baseline = run_traced(population, traced_options(1));

    ASSERT_TRUE(is_valid_json(baseline.sim)) << baseline.sim;
    ASSERT_TRUE(is_valid_json(baseline.wall));
    EXPECT_NE(baseline.sim.find("\"name\":\"chunk\""), std::string::npos);
    EXPECT_NE(baseline.sim.find("\"name\":\"retry\""), std::string::npos);
    EXPECT_NE(baseline.sim.find("\"name\":\"domains\""), std::string::npos);
    EXPECT_NE(baseline.sim.find("\"replayed\":0"), std::string::npos);
    // Wall sidecar carries the scheduling story (worker + merge lanes).
    EXPECT_NE(baseline.wall.find("scan chunk"), std::string::npos);
    EXPECT_NE(baseline.wall.find("merge chunk"), std::string::npos);

    for (const unsigned threads : {2u, 8u}) {
        const TracedRun run = run_traced(population, traced_options(threads));
        EXPECT_EQ(run.sim, baseline.sim) << "threads=" << threads;
        EXPECT_EQ(run.deterministic_telemetry, baseline.deterministic_telemetry)
            << "threads=" << threads;
    }
}

TEST(CampaignTraceTest, SimTimestampsAreNonDecreasingPerLane) {
    const TracedRun run = run_traced(tiny_population(), traced_options(8));
    const std::vector<ParsedEvent> events = parse_events(run.sim);
    ASSERT_FALSE(events.empty());

    std::size_t timed = 0;
    std::vector<double> last_ts;  // per tid
    for (const ParsedEvent& event : events) {
        if (event.ph == 'M') continue;  // metadata has no timestamp
        ASSERT_GE(event.tid, 0) << event.raw;
        ASSERT_GE(event.ts, 0.0) << event.raw;
        if (last_ts.size() <= static_cast<std::size_t>(event.tid)) {
            last_ts.resize(static_cast<std::size_t>(event.tid) + 1, 0.0);
        }
        // Non-decreasing, not strictly increasing: a chunk span shares its
        // start timestamp with its first instant, and zero-sim-time domains
        // produce exact ties.
        EXPECT_GE(event.ts, last_ts[static_cast<std::size_t>(event.tid)]) << event.raw;
        last_ts[static_cast<std::size_t>(event.tid)] = event.ts;
        ++timed;
    }
    EXPECT_GT(timed, 7u);  // at least one span per chunk plus counters
}

TEST_F(TraceTest, KillAndResumeReplaysTheSameTimelineFlaggedReplayed) {
    const web::Population population = tiny_population();
    const TracedRun baseline = run_traced(population, traced_options(1));

    scanner::ScanOptions journaled = traced_options(2);
    journaled.journal_dir = (dir_ / "journal").string();
    {
        struct Kill {};
        scanner::Campaign campaign{population, journaled};
        telemetry::MetricsRegistry registry;  // header must match run_traced's
        campaign.set_metrics(&registry);
        std::uint64_t merged = 0;
        EXPECT_THROW(campaign.run([&](const web::Domain&, scanner::DomainScan&&) {
                         if (merged >= 2 * journaled.chunk_domains) throw Kill{};
                         ++merged;
                     }),
                     Kill);
    }

    const TracedRun resumed = run_traced(population, journaled, /*resume=*/true);
    ASSERT_TRUE(is_valid_json(resumed.sim));
    // The replayed chunks are flagged; flipping the flag back recovers the
    // uninterrupted trace byte for byte.
    EXPECT_NE(resumed.sim.find("\"replayed\":1"), std::string::npos);
    std::string normalized = resumed.sim;
    constexpr std::string_view kReplayed = "\"replayed\":1";
    for (std::size_t at = normalized.find(kReplayed); at != std::string::npos;
         at = normalized.find(kReplayed, at)) {
        normalized[at + kReplayed.size() - 1] = '0';
    }
    EXPECT_EQ(normalized, baseline.sim);
    EXPECT_EQ(resumed.deterministic_telemetry, baseline.deterministic_telemetry);
}

TEST(CampaignTraceTest, AttachingARecorderDoesNotPerturbDeterministicTelemetry) {
    const web::Population population = tiny_population();
    const scanner::ScanOptions options = traced_options(1);

    scanner::Campaign plain{population, options};
    telemetry::MetricsRegistry plain_registry;
    plain.set_metrics(&plain_registry);
    plain.run([](const web::Domain&, scanner::DomainScan&&) {});

    const TracedRun traced = run_traced(population, options);
    EXPECT_EQ(traced.deterministic_telemetry, deterministic_csv(plain_registry));
}

}  // namespace
}  // namespace spinscope::telemetry
