// Unit tests for util::Rng — determinism, distribution sanity, edge cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace spinscope::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
    Rng rng{7};
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i) first.push_back(rng.next());
    rng.reseed(7);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
    Rng parent{99};
    Rng child = parent.fork(1);
    // The child must not replay the parent's stream.
    Rng parent2{99};
    (void)parent2.next();  // parent consumed one draw to make the fork
    int equal = 0;
    for (int i = 0; i < 256; ++i) {
        if (child.next() == parent2.next()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkDifferentStreamsDiffer) {
    Rng parent{5};
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 256; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformU64ZeroBoundYieldsZero) {
    Rng rng{1};
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_u64(0), 0u);
}

TEST(Rng, UniformU64StaysBelowBound) {
    Rng rng{1};
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 33}) {
        for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.uniform_u64(bound), bound);
    }
}

TEST(Rng, UniformU64CoversSmallRange) {
    Rng rng{123};
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformI64InclusiveBounds) {
    Rng rng{11};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniform_i64(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
    Rng rng{3};
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceClampsProbabilities) {
    Rng rng{4};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceMatchesProbability) {
    Rng rng{5};
    int hits = 0;
    constexpr int kTrials = 40000;
    for (int i = 0; i < kTrials; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.015);
}

TEST(Rng, OneInZeroNeverFires) {
    Rng rng{6};
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(rng.one_in(0));
}

TEST(Rng, OneInOneAlwaysFires) {
    Rng rng{6};
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(rng.one_in(1));
}

TEST(Rng, CoinIsRoughlyFair) {
    Rng rng{8};
    int heads = 0;
    constexpr int kTrials = 40000;
    for (int i = 0; i < kTrials; ++i) {
        if (rng.coin()) ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.5, 0.015);
}

// Property sweep: the RFC 9000/9312 lottery rates must track 1/n.
class OneInRate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneInRate, FiresAtExpectedRate) {
    const std::uint64_t n = GetParam();
    Rng rng{n * 77 + 1};
    constexpr int kTrials = 64000;
    int fires = 0;
    for (int i = 0; i < kTrials; ++i) {
        if (rng.one_in(n)) ++fires;
    }
    const double expected = 1.0 / static_cast<double>(n);
    EXPECT_NEAR(static_cast<double>(fires) / kTrials, expected, 4.0 * expected + 0.002);
}

INSTANTIATE_TEST_SUITE_P(LotteryRates, OneInRate,
                         ::testing::Values(2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 100ULL));

TEST(Splitmix, KnownAvalancheBehaviour) {
    // Two adjacent states must produce very different outputs.
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 1;
    const auto a = splitmix64_next(s1);
    const auto b = splitmix64_next(s2);
    EXPECT_NE(a, b);
    EXPECT_GT(__builtin_popcountll(a ^ b), 10);
}

}  // namespace
}  // namespace spinscope::util
