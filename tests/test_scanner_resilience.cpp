// Campaign resilience tests: hostile-universe sweeps finish and classify
// every attempt, retries recover transiently-faulted domains, an attached
// empty fault plan leaves campaign results byte-identical, and bad knobs are
// rejected at construction.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "qlog/trace.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

namespace spinscope::scanner {
namespace {

web::PopulationConfig hostile_config(double transient_share, double transient_probability) {
    web::PopulationConfig cfg;
    cfg.scale = 200000.0;  // ~1k domains: a fast full sweep
    cfg.seed = 1;
    cfg.host_fault_rate = 1.0;  // every serving host is broken
    cfg.transient_fault_share = transient_share;
    cfg.transient_fault_probability = transient_probability;
    return cfg;
}

TEST(Resilience, HostileSweepCompletesAndClassifiesEveryAttempt) {
    // Persistent faults only: every attempt against a QUIC host hits its
    // host's failure mode. The sweep must still finish, classify every
    // attempt (including protocol_error for garbage payloads) and never
    // fall back to the graceful-degradation error path.
    web::Population hostile{hostile_config(/*transient_share=*/0.0, 0.6)};
    Campaign campaign{hostile, {}};
    std::uint64_t faulted_attempts = 0;
    const CampaignStats stats =
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            ASSERT_EQ(scan.attempts.size(), scan.connections.size());
            for (std::size_t i = 0; i < scan.attempts.size(); ++i) {
                EXPECT_EQ(scan.attempts[i].outcome, scan.connections[i].outcome);
                if (scan.attempts[i].server_fault != faults::ServerFaultMode::none) {
                    ++faulted_attempts;
                }
            }
        });

    EXPECT_EQ(stats.domains_scanned, hostile.domains().size());
    EXPECT_EQ(stats.domains_errored, 0u);
    EXPECT_EQ(stats.domains_quic_ok, 0u) << "no host is healthy in this universe";

    // Every attempt got exactly one outcome...
    std::uint64_t outcome_total = 0;
    for (const auto count : stats.outcomes) outcome_total += count;
    EXPECT_EQ(outcome_total, stats.connections);
    // ...and exactly one server-fault class (index 0 = healthy).
    std::uint64_t fault_total = 0;
    for (std::size_t mode = 1; mode < stats.server_faults.size(); ++mode) {
        fault_total += stats.server_faults[mode];
    }
    EXPECT_EQ(fault_total, faulted_attempts);
    EXPECT_EQ(fault_total + stats.server_faults[0], stats.connections);
    EXPECT_GT(fault_total, 0u);

    // Garbage payloads surfaced as protocol errors, not crashes or hangs.
    EXPECT_GT(stats.outcome(qlog::ConnectionOutcome::protocol_error), 0u);
    const std::string rendered = stats.render();
    EXPECT_NE(rendered.find("domains errored"), std::string::npos);
    EXPECT_NE(rendered.find("fault"), std::string::npos);
}

TEST(Resilience, RetriesRecoverTransientlyFaultedDomains) {
    // Every host is broken, but every fault is transient (fires on 60 % of
    // attempts). With three attempts per hop, a domain that failed its first
    // try recovers unless all retries also draw the fault (~0.6^2 of the
    // time), so well over half of the no-retry failures must come back.
    web::Population flaky{hostile_config(/*transient_share=*/1.0, 0.6)};

    ScanOptions no_retry;  // default: single attempt
    Campaign baseline{flaky, no_retry};

    ScanOptions with_retry;
    with_retry.retry.max_attempts = 3;
    with_retry.retry.initial_backoff = util::Duration::millis(100);
    Campaign retrying{flaky, with_retry};

    std::uint64_t failed_without_retry = 0;
    std::uint64_t recovered = 0;
    std::uint64_t retries_spent = 0;
    for (const auto& domain : flaky.domains()) {
        if (!domain.resolves || !domain.quic) continue;
        const DomainScan a = baseline.scan_domain(domain);
        if (a.quic_ok()) continue;
        ++failed_without_retry;

        const DomainScan b = retrying.scan_domain(domain);
        retries_spent += b.retries;
        if (b.quic_ok()) {
            ++recovered;
            EXPECT_TRUE(b.recovered_by_retry);
            EXPECT_GT(b.retries, 0u);
            // The first success is a retry at the landing hop, and it waited
            // a positive backoff before running.
            for (const auto& attempt : b.attempts) {
                if (attempt.outcome != qlog::ConnectionOutcome::ok) continue;
                EXPECT_EQ(attempt.redirect_hop, 0);
                EXPECT_GT(attempt.retry, 0);
                EXPECT_FALSE(attempt.backoff.is_zero());
                break;
            }
        }
    }
    ASSERT_GT(failed_without_retry, 10u) << "universe too small to be meaningful";
    EXPECT_GT(retries_spent, 0u);
    EXPECT_GE(recovered * 2, failed_without_retry)
        << "retries must recover at least half of the transient failures ("
        << recovered << "/" << failed_without_retry << ")";
}

TEST(Resilience, RetryStatsAggregateAcrossTheSweep) {
    web::PopulationConfig cfg = hostile_config(1.0, 0.6);
    cfg.scale = 2000000.0;  // ~100 domains: retries make attempts pricier
    web::Population flaky{cfg};
    ScanOptions options;
    options.retry.max_attempts = 2;
    Campaign campaign{flaky, options};
    std::uint64_t retries_seen = 0;
    std::uint64_t recovered_seen = 0;
    const CampaignStats stats =
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            retries_seen += scan.retries;
            if (scan.recovered_by_retry) ++recovered_seen;
        });
    EXPECT_EQ(stats.retries, retries_seen);
    EXPECT_EQ(stats.domains_recovered_by_retry, recovered_seen);
    EXPECT_GT(stats.retries, 0u);
    std::uint64_t outcome_total = 0;
    for (const auto count : stats.outcomes) outcome_total += count;
    EXPECT_EQ(outcome_total, stats.connections);
}

TEST(Resilience, EmptyFaultPlanIsByteIdenticalToNoPlan) {
    // An engaged-but-empty FaultPlan attaches an idle injector to every
    // link; the injector draws no randomness, so every trace of the sweep
    // must serialize identically to a plan-free sweep with the same seed.
    web::Population tiny{{200000.0, 1}};

    const auto sweep_jsonl = [&tiny](bool attach_empty_plan) {
        ScanOptions options;
        if (attach_empty_plan) options.fault_plan = faults::FaultPlan{};
        Campaign campaign{tiny, options};
        std::string jsonl;
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            for (const auto& trace : scan.connections) jsonl += qlog::to_jsonl(trace);
        });
        return jsonl;
    };

    const std::string without = sweep_jsonl(false);
    const std::string with = sweep_jsonl(true);
    ASSERT_FALSE(without.empty());
    EXPECT_EQ(without, with);
}

TEST(Resilience, ActiveFaultPlanDegradesButNeverCrashesTheSweep) {
    web::Population tiny{{2000000.0, 1}};
    ScanOptions options;
    faults::FaultPlan plan;
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.02;
    plan.duplicate_probability = 0.05;
    options.fault_plan = plan;
    Campaign campaign{tiny, options};
    const CampaignStats stats = campaign.run([](const web::Domain&, DomainScan&&) {});
    EXPECT_EQ(stats.domains_scanned, tiny.domains().size());
    EXPECT_EQ(stats.domains_errored, 0u);
    std::uint64_t outcome_total = 0;
    for (const auto count : stats.outcomes) outcome_total += count;
    EXPECT_EQ(outcome_total, stats.connections);
}

TEST(Resilience, CampaignConstructorRejectsInvalidKnobs) {
    web::Population tiny{{2000000.0, 1}};

    ScanOptions nan_loss;
    nan_loss.loss_rate = std::nan("");
    EXPECT_THROW((Campaign{tiny, nan_loss}), std::invalid_argument);

    ScanOptions zero_attempts;
    zero_attempts.retry.max_attempts = 0;
    EXPECT_THROW((Campaign{tiny, zero_attempts}), std::invalid_argument);

    ScanOptions bad_plan;
    bad_plan.fault_plan = faults::FaultPlan{};
    bad_plan.fault_plan->duplicate_probability = std::nan("");
    EXPECT_THROW((Campaign{tiny, bad_plan}), std::invalid_argument);

    ScanOptions negative_deadline;
    negative_deadline.attempt_deadline = util::Duration::zero();
    EXPECT_THROW((Campaign{tiny, negative_deadline}), std::invalid_argument);

    // Out-of-range (finite) probabilities are clamped, not fatal.
    ScanOptions clamped;
    clamped.loss_rate = 7.0;
    Campaign campaign{tiny, clamped};
    EXPECT_EQ(campaign.options().loss_rate, 1.0);
}

}  // namespace
}  // namespace spinscope::scanner
