// Integration tests for quic::Connection: handshake, transfer, spin wave,
// loss recovery, timeouts and teardown — all over the simulated network.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"

namespace spinscope::quic {
namespace {

using netsim::Datagram;
using netsim::LinkConfig;
using netsim::Path;
using netsim::Simulator;
using util::Duration;
using util::Rng;
using util::TimePoint;

/// Client/server pair over a configurable path with optional datagram
/// filtering (for targeted loss injection).
class ConnectionPair {
public:
    explicit ConnectionPair(LinkConfig link = default_link(), ConnectionConfig client_cfg = {},
                            ConnectionConfig server_cfg = {})
        : rng_{0xfeed},
          path_{sim_, link, link, rng_},
          client_{sim_, with_role(client_cfg, Role::client), rng_.fork(1),
                  [this](Datagram dg) { path_.forward_link().send(std::move(dg)); },
                  &client_trace_},
          server_{sim_, with_role(server_cfg, Role::server), rng_.fork(2),
                  [this](Datagram dg) { path_.return_link().send(std::move(dg)); },
                  &server_trace_} {
        path_.forward_link().set_receiver([this](spinscope::bytes::ConstByteSpan dg) {
            ++forward_count_;
            if (drop_forward_ && drop_forward_(forward_count_, dg)) return;
            server_.on_datagram(dg);
        });
        path_.return_link().set_receiver([this](spinscope::bytes::ConstByteSpan dg) {
            ++return_count_;
            if (drop_return_ && drop_return_(return_count_, dg)) return;
            client_.on_datagram(dg);
        });
    }

    static LinkConfig default_link() {
        LinkConfig link;
        link.base_delay = Duration::millis(10);
        return link;
    }

    static ConnectionConfig with_role(ConnectionConfig cfg, Role role) {
        cfg.role = role;
        if (cfg.spin.policy == SpinPolicy::spin && cfg.spin.lottery_one_in == 16) {
            cfg.spin.lottery_one_in = 0;  // deterministic tests
        }
        return cfg;
    }

    void run(Duration limit = Duration::seconds(60)) {
        sim_.run_until(TimePoint::origin() + limit);
    }

    Simulator sim_;
    Rng rng_;
    Path path_;
    qlog::Trace client_trace_;
    qlog::Trace server_trace_;
    Connection client_;
    Connection server_;
    int forward_count_ = 0;
    int return_count_ = 0;
    std::function<bool(int, spinscope::bytes::ConstByteSpan)> drop_forward_;
    std::function<bool(int, spinscope::bytes::ConstByteSpan)> drop_return_;
};

TEST(Connection, HandshakeCompletesOnBothSides) {
    ConnectionPair pair;
    pair.client_.connect();
    // Stop before the idle timeout: a connection with no application traffic
    // (and no CONNECTION_CLOSE) idles out by design.
    pair.run(Duration::seconds(2));
    EXPECT_TRUE(pair.client_.handshake_complete());
    EXPECT_TRUE(pair.server_.handshake_complete());
    EXPECT_FALSE(pair.client_.failed());
    EXPECT_FALSE(pair.server_.failed());
}

TEST(Connection, HandshakeTakesOneAndAHalfRtts) {
    ConnectionPair pair;
    TimePoint done = TimePoint::never();
    pair.client_.on_handshake_complete = [&] { done = pair.sim_.now(); };
    pair.client_.connect();
    pair.run();
    // CHLO -> (SHLO, SFIN) -> complete: one full RTT plus emission latency.
    ASSERT_FALSE(done.is_never());
    EXPECT_GE((done - TimePoint::origin()).count_millis(), 20);
    EXPECT_LE((done - TimePoint::origin()).count_millis(), 24);
}

TEST(Connection, FirstInitialIsPaddedToMtu) {
    ConnectionPair pair;
    std::size_t first_size = 0;
    pair.drop_forward_ = [&](int n, spinscope::bytes::ConstByteSpan dg) {
        if (n == 1) first_size = dg.size();
        return false;
    };
    pair.client_.connect();
    pair.run();
    EXPECT_GE(first_size, 1150u);  // ~MTU minus header margin
}

TEST(Connection, RequestResponseTransfer) {
    ConnectionPair pair;
    std::vector<std::uint8_t> request(300, 0x42);
    std::vector<std::uint8_t> response(50'000, 0x24);
    std::vector<std::uint8_t> received_request;
    std::vector<std::uint8_t> received_response;

    pair.server_.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t> data) {
        ASSERT_EQ(id, 0u);
        received_request = std::move(data);
        pair.server_.send_stream(0, response, true);
    };
    pair.client_.on_handshake_complete = [&] { pair.client_.send_stream(0, request, true); };
    pair.client_.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t> data) {
        ASSERT_EQ(id, 0u);
        received_response = std::move(data);
    };
    pair.client_.connect();
    pair.run();
    EXPECT_EQ(received_request, request);
    EXPECT_EQ(received_response, response);
}

TEST(Connection, SpinWaveVisibleOnLargeTransfer) {
    ConnectionPair pair;
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, std::vector<std::uint8_t>(80'000, 1), true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.connect();
    pair.run();
    bool saw_zero = false;
    bool saw_one = false;
    for (const auto& ev : pair.client_trace_.received) {
        if (ev.type != PacketType::one_rtt) continue;
        (ev.spin ? saw_one : saw_zero) = true;
    }
    EXPECT_TRUE(saw_zero);
    EXPECT_TRUE(saw_one);
}

TEST(Connection, ClientRttEstimateTracksPathRtt) {
    ConnectionPair pair;
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, std::vector<std::uint8_t>(20'000, 1), true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.connect();
    pair.run();
    ASSERT_TRUE(pair.client_.rtt().has_samples());
    // Path RTT is 20 ms; estimates include sub-ms emission latencies.
    EXPECT_GE(pair.client_.rtt().min_rtt().count_millis(), 20);
    EXPECT_LE(pair.client_.rtt().min_rtt().count_millis(), 23);
    EXPECT_LE(pair.client_.rtt().smoothed_rtt().count_millis(), 60);
}

TEST(Connection, LostServerFlightIsRetransmitted) {
    ConnectionPair pair;
    // Drop three consecutive server datagrams mid-response.
    pair.drop_return_ = [](int n, spinscope::bytes::ConstByteSpan) { return n >= 12 && n < 15; };
    std::vector<std::uint8_t> response(40'000, 7);
    std::vector<std::uint8_t> got;
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, response, true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t> data) {
        got = std::move(data);
    };
    pair.client_.connect();
    pair.run();
    EXPECT_EQ(got, response);
}

TEST(Connection, LostRequestRecoveredByPto) {
    ConnectionPair pair;
    // Drop the client's first 1-RTT flight (request); PTO must resend it.
    int one_rtt_seen = 0;
    pair.drop_forward_ = [&](int, spinscope::bytes::ConstByteSpan dg) {
        if (!dg.empty() && (dg[0] & 0x80) == 0) {
            ++one_rtt_seen;
            return one_rtt_seen <= 2;
        }
        return false;
    };
    std::vector<std::uint8_t> got;
    pair.server_.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t> data) {
        if (id == 0) got = std::move(data);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(200, 5), true);
    };
    pair.client_.connect();
    pair.run();
    EXPECT_EQ(got.size(), 200u);
    EXPECT_GT(pair.client_.counters().pto_count + pair.client_.counters().packets_lost, 0u);
}

TEST(Connection, HandshakeTimeoutWithoutServer) {
    Simulator sim;
    Rng rng{1};
    qlog::Trace trace;
    ConnectionConfig cfg;
    cfg.role = Role::client;
    cfg.handshake_timeout = Duration::seconds(3);
    Connection client{sim, cfg, rng, [](Datagram) {}, &trace};
    bool failed = false;
    client.on_failed = [&] { failed = true; };
    client.connect();
    sim.run();
    EXPECT_TRUE(failed);
    EXPECT_TRUE(client.failed());
    EXPECT_FALSE(client.handshake_complete());
    client.finalize_trace();
    EXPECT_EQ(trace.outcome, qlog::ConnectionOutcome::handshake_timeout);
    // Initial was retransmitted via PTO before giving up.
    EXPECT_GT(client.counters().packets_sent, 1u);
}

TEST(Connection, CloseReachesPeer) {
    ConnectionPair pair;
    bool server_closed = false;
    pair.server_.on_closed = [&] { server_closed = true; };
    pair.client_.on_handshake_complete = [&] { pair.client_.close(0, "bye"); };
    pair.client_.connect();
    pair.run();
    EXPECT_TRUE(pair.client_.closed());
    EXPECT_TRUE(server_closed);
    EXPECT_TRUE(pair.server_.closed());
}

TEST(Connection, NoTrafficAfterClose) {
    ConnectionPair pair;
    pair.client_.on_handshake_complete = [&] { pair.client_.close(0, "bye"); };
    pair.client_.connect();
    pair.run();
    const auto packets = pair.client_.counters().packets_sent;
    pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 1), true);
    pair.run();
    EXPECT_EQ(pair.client_.counters().packets_sent, packets);
}

TEST(Connection, FlowControlUpdatesEmittedDuringDownload) {
    ConnectionPair pair;
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, std::vector<std::uint8_t>(60'000, 1), true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.connect();
    pair.run();
    // 60 kB at a 12 kB update interval -> several ack-eliciting client
    // packets beyond request + handshake.
    int eliciting_one_rtt = 0;
    for (const auto& ev : pair.client_trace_.sent) {
        if (ev.type == PacketType::one_rtt && ev.ack_eliciting) ++eliciting_one_rtt;
    }
    EXPECT_GE(eliciting_one_rtt, 3);
}

TEST(Connection, IdleTimeoutFiresWhenPeerVanishes) {
    ConnectionPair pair;
    bool vanished = false;
    pair.drop_return_ = [&](int, spinscope::bytes::ConstByteSpan) { return vanished; };
    pair.drop_forward_ = [&](int, spinscope::bytes::ConstByteSpan) { return vanished; };
    pair.client_.on_handshake_complete = [&] {
        vanished = true;  // the server stops answering after the handshake
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 1), true);
    };
    bool failed = false;
    pair.client_.on_failed = [&] { failed = true; };
    pair.client_.connect();
    pair.run(Duration::seconds(120));
    EXPECT_TRUE(failed);
}

TEST(Connection, ServerHonoursDraftVersionInHeaders) {
    ConnectionConfig client_cfg;
    client_cfg.version = Version::draft29;
    ConnectionPair pair{ConnectionPair::default_link(), client_cfg, {}};
    pair.client_.connect();
    pair.run();
    EXPECT_TRUE(pair.client_.handshake_complete());
    ASSERT_FALSE(pair.client_trace_.sent.empty());
}

TEST(Connection, CountersAreConsistent) {
    ConnectionPair pair;
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, std::vector<std::uint8_t>(30'000, 1), true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.connect();
    pair.run();
    EXPECT_EQ(pair.client_.counters().packets_sent, pair.client_trace_.sent.size());
    EXPECT_EQ(pair.client_.counters().packets_received, pair.client_trace_.received.size());
    // Lossless link: everything the client sent, the server received.
    EXPECT_EQ(pair.server_.counters().packets_received, pair.client_.counters().packets_sent);
}

TEST(Connection, GreasingServerShowsRandomSpin) {
    ConnectionConfig server_cfg;
    server_cfg.spin = {SpinPolicy::grease_per_packet, 0, SpinPolicy::always_zero};
    ConnectionPair pair{ConnectionPair::default_link(), {}, server_cfg};
    pair.server_.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        pair.server_.send_stream(0, std::vector<std::uint8_t>(40'000, 1), true);
    };
    pair.client_.on_handshake_complete = [&] {
        pair.client_.send_stream(0, std::vector<std::uint8_t>(100, 2), true);
    };
    pair.client_.connect();
    pair.run();
    int ones = 0;
    int total = 0;
    for (const auto& ev : pair.client_trace_.received) {
        if (ev.type != PacketType::one_rtt) continue;
        ++total;
        if (ev.spin) ++ones;
    }
    ASSERT_GT(total, 20);
    EXPECT_GT(ones, total / 5);
    EXPECT_LT(ones, total * 4 / 5);
}

}  // namespace
}  // namespace spinscope::quic
