// Multi-process campaign suite (DESIGN.md §13): chunk leases and fencing
// tokens, the map-layout journal, journal.lock ownership, the fork-based
// worker pool, and the chaos kill-sweep.
//
// The contract under test: `kill -9` of any worker at any instant changes
// nothing about the output — Campaign::reduce over the shared map journal
// produces sink streams, stats and deterministic telemetry byte-identical to
// a single-process Campaign::run, at every worker and thread count.

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "golden.hpp"
#include "scanner/campaign.hpp"
#include "scanner/journal.hpp"
#include "scanner/procpool.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/proc.hpp"
#include "web/population.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace spinscope::scanner {
namespace {

using spinscope::testing::render_scan_stream;

// ~110 domains at seed 1 — 7 chunks at the default chunk_domains=16, enough
// chunks for a meaningful kill sweep while each pass stays fast.
web::Population tiny_population() { return web::Population{{2'000'000.0, 1}}; }

class ProcPoolTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_procpool_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

CampaignHeader sample_header() {
    CampaignHeader header;
    header.seed = 0xbee5;
    header.week = 2;
    header.ipv6 = false;
    header.chunk_domains = 16;
    header.domain_count = 110;
    header.has_telemetry = true;
    return header;
}

struct SweepResult {
    std::string stream;                ///< concatenated render_scan_stream, sink order
    std::vector<std::uint32_t> order;  ///< domain ids in sink order
    CampaignStats stats;
    std::string telemetry;  ///< telemetry::deterministic_csv
};

void expect_same_stats(const CampaignStats& a, const CampaignStats& b) {
    EXPECT_EQ(a.domains_scanned, b.domains_scanned);
    EXPECT_EQ(a.domains_resolved, b.domains_resolved);
    EXPECT_EQ(a.domains_quic_ok, b.domains_quic_ok);
    EXPECT_EQ(a.connections, b.connections);
    EXPECT_EQ(a.redirects_followed, b.redirects_followed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.domains_recovered_by_retry, b.domains_recovered_by_retry);
    EXPECT_EQ(a.domains_errored, b.domains_errored);
    EXPECT_EQ(a.outcomes, b.outcomes);
    EXPECT_EQ(a.server_faults, b.server_faults);
}

SweepResult run_single_process(const web::Population& population,
                               const ScanOptions& options) {
    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    SweepResult result;
    result.stats = campaign.run([&](const web::Domain& domain, DomainScan&& scan) {
        result.order.push_back(domain.id);
        result.stream += render_scan_stream(scan);
    });
    result.telemetry = telemetry::deterministic_csv(registry);
    return result;
}

/// Fast supervision knobs for tests: snappy heartbeats, millisecond backoffs.
ProcPoolOptions fast_pool(unsigned procs) {
    ProcPoolOptions pool;
    pool.procs = procs;
    pool.heartbeat_interval = util::Duration::millis(2);
    pool.proc_restart.initial_backoff = util::Duration::millis(1);
    pool.proc_restart.max_backoff = util::Duration::millis(2);
    return pool;
}

/// One full multi-process pass: run_procs over the map journal, then reduce.
/// `report`/`registry_csv` outputs are optional observability taps.
SweepResult run_multi_process(const web::Population& population,
                              const ScanOptions& options,
                              const ProcPoolOptions& pool,
                              ProcPoolReport* report_out = nullptr,
                              telemetry::MetricsRegistry* registry_out = nullptr) {
    Campaign campaign{population, options};
    telemetry::MetricsRegistry local;
    telemetry::MetricsRegistry* registry =
        registry_out != nullptr ? registry_out : &local;
    campaign.set_metrics(registry);
    const ProcPoolReport report = run_procs(campaign, pool);
    if (report_out != nullptr) *report_out = report;
    SweepResult result;
    result.stats = campaign.reduce([&](const web::Domain& domain, DomainScan&& scan) {
        result.order.push_back(domain.id);
        result.stream += render_scan_stream(scan);
    });
    result.stats.proc_restarts = report.proc_restarts;
    result.telemetry = telemetry::deterministic_csv(*registry);
    return result;
}

void expect_same_sweep(const SweepResult& got, const SweepResult& want,
                       const std::string& label) {
    EXPECT_EQ(got.order, want.order) << label;
    EXPECT_EQ(got.stream, want.stream) << label;
    EXPECT_EQ(got.telemetry, want.telemetry) << label;
    expect_same_stats(got.stats, want.stats);
}

// --- Chunk leases ------------------------------------------------------------

TEST_F(ProcPoolTest, LeasePayloadRoundTripsAndRejectsGarbage) {
    ChunkLease lease;
    lease.chunk_index = 42;
    lease.pid = 1234;
    lease.token = 0xdeadbeef;
    lease.attempts = 3;
    const auto parsed = parse_lease(serialize_lease(lease));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->chunk_index, 42u);
    EXPECT_EQ(parsed->pid, 1234);
    EXPECT_EQ(parsed->token, 0xdeadbeefu);
    EXPECT_EQ(parsed->attempts, 3u);

    EXPECT_FALSE(parse_lease("").has_value());
    EXPECT_FALSE(parse_lease("lease chunk=1\n").has_value());
    EXPECT_FALSE(parse_lease("not a lease at all").has_value());
}

TEST_F(ProcPoolTest, LeaseClaimIsExclusiveAndReleaseIsTokenFenced) {
    ChunkLease first;
    first.chunk_index = 7;
    first.pid = util::current_pid();
    first.token = 100;
    first.attempts = 1;
    ASSERT_TRUE(claim_lease(dir_, first));

    // The claim is exclusive: a second incarnation cannot steal it.
    ChunkLease second = first;
    second.token = 101;
    second.attempts = 2;
    EXPECT_FALSE(claim_lease(dir_, second));

    // Fencing: releasing with the WRONG token is a no-op — the lease a
    // wrongly-declared-dead worker re-claimed must survive a stale sweeper.
    EXPECT_FALSE(release_lease(dir_, 7, 999));
    const auto still = read_lease(dir_, 7);
    ASSERT_TRUE(still.has_value());
    EXPECT_EQ(still->token, 100u);

    EXPECT_TRUE(release_lease(dir_, 7, 100));
    EXPECT_FALSE(read_lease(dir_, 7).has_value());
    // Releasing an absent lease reports "gone", so sweepers are idempotent.
    EXPECT_TRUE(release_lease(dir_, 7, 100));

    // A garbled lease file blocks nobody: token 0 breaks it.
    ASSERT_TRUE(util::create_file_exclusive(lease_path(dir_, 9), "garbage\n"));
    EXPECT_FALSE(read_lease(dir_, 9).has_value());
    EXPECT_FALSE(release_lease(dir_, 9, 55)) << "a real token must not match garbage";
    EXPECT_TRUE(release_lease(dir_, 9, 0));
    EXPECT_FALSE(std::filesystem::exists(lease_path(dir_, 9)));
}

// --- Map-layout journal ------------------------------------------------------

TEST_F(ProcPoolTest, MapJournalRoundTripsChunksInAnyPublishOrder) {
    const CampaignHeader header = sample_header();
    const auto map_dir = dir_ / "map";
    init_map_journal(map_dir, header, /*wipe=*/true);

    // Publish out of order, as racing workers do.
    for (const std::size_t c : {4u, 0u, 2u}) {
        ChunkRecord record;
        record.chunk_index = c;
        DomainScan scan;
        scan.domain_id = static_cast<std::uint32_t>(10 + c);
        scan.resolved = true;
        record.scans.push_back(std::move(scan));
        record.telemetry_snapshot = "counter x " + std::to_string(c) + "\n";
        ASSERT_TRUE(write_map_chunk(map_dir, record));
    }

    const MapReplayResult replay = read_map_journal(map_dir);
    ASSERT_TRUE(replay.has_header);
    EXPECT_TRUE(replay.header == header);
    EXPECT_EQ(replay.corrupt_chunks, 0u);
    ASSERT_EQ(replay.chunks.size(), 3u);
    EXPECT_EQ(replay.chunks[0].chunk_index, 0u);
    EXPECT_EQ(replay.chunks[1].chunk_index, 2u);
    EXPECT_EQ(replay.chunks[2].chunk_index, 4u);

    EXPECT_TRUE(read_map_chunk(map_dir, 2).has_value());
    EXPECT_FALSE(read_map_chunk(map_dir, 3).has_value());
}

TEST_F(ProcPoolTest, MapJournalTreatsCorruptRecordsAsUnscanned) {
    const auto map_dir = dir_ / "map";
    init_map_journal(map_dir, sample_header(), /*wipe=*/true);
    ChunkRecord record;
    record.chunk_index = 1;
    ASSERT_TRUE(write_map_chunk(map_dir, record));

    // Flip a payload byte: the frame CRC fails, the chunk reads as absent.
    const auto path = map_chunk_path(map_dir, 1);
    const auto size = std::filesystem::file_size(path);
    {
        std::fstream file{path, std::ios::binary | std::ios::in | std::ios::out};
        file.seekp(static_cast<std::streamoff>(size - 1));
        file.put('\xff');
    }
    EXPECT_FALSE(read_map_chunk(map_dir, 1).has_value());
    const MapReplayResult replay = read_map_journal(map_dir);
    EXPECT_TRUE(replay.chunks.empty());
    EXPECT_EQ(replay.corrupt_chunks, 1u);
}

TEST_F(ProcPoolTest, MapJournalInitRejectsAForeignHeaderWithoutWipe) {
    const auto map_dir = dir_ / "map";
    init_map_journal(map_dir, sample_header(), /*wipe=*/true);
    CampaignHeader other = sample_header();
    other.seed ^= 1;
    EXPECT_THROW(init_map_journal(map_dir, other, /*wipe=*/false),
                 std::invalid_argument);
    // A wipe makes it a fresh campaign's journal: no objection.
    init_map_journal(map_dir, other, /*wipe=*/true);
    const MapReplayResult replay = read_map_journal(map_dir);
    ASSERT_TRUE(replay.has_header);
    EXPECT_TRUE(replay.header == other);
}

// --- journal.lock ------------------------------------------------------------

TEST_F(ProcPoolTest, CampaignsRefuseAJournalDirLockedByALiveProcess) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "locked").string();
    std::filesystem::create_directories(options.journal_dir);
    {
        // A live foreign owner (pid 1 always exists and is never us).
        std::ofstream out{journal_lock_path(options.journal_dir)};
        out << "1\n";
    }
    Campaign campaign{population, options};
    const auto sink = [](const web::Domain&, DomainScan&&) {};
    try {
        (void)campaign.run(sink);
        FAIL() << "run() must refuse a journal dir owned by a live process";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string{e.what()}.find("in use"), std::string::npos) << e.what();
    }
    EXPECT_THROW((void)campaign.reduce(sink), std::runtime_error);
#ifndef _WIN32
    EXPECT_THROW((void)run_procs(campaign, fast_pool(1)), std::runtime_error);
#endif

    // A dead owner's lock is stale: the campaign breaks it and proceeds.
    {
        std::ofstream out{journal_lock_path(options.journal_dir), std::ios::trunc};
        out << "999999999\n";
    }
    EXPECT_NO_THROW((void)campaign.run(sink));
    EXPECT_FALSE(std::filesystem::exists(journal_lock_path(options.journal_dir)))
        << "the lock must be released after the run";
}

#ifndef _WIN32

// --- Multi-process byte-identity ---------------------------------------------

TEST_F(ProcPoolTest, MapReducePassIsByteIdenticalAcrossProcsAndThreads) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.retry.max_attempts = 2;  // exercise backoff streams
    for (const unsigned threads : {1u, 2u}) {
        ScanOptions base = options;
        base.threads = threads;
        const SweepResult baseline = run_single_process(population, base);
        ASSERT_GT(baseline.order.size(), 80u);
        for (const unsigned procs : {1u, 2u, 4u}) {
            ScanOptions multi = base;
            multi.journal_dir =
                (dir_ / ("map_" + std::to_string(threads) + "_" + std::to_string(procs)))
                    .string();
            ProcPoolReport report;
            const SweepResult reduced =
                run_multi_process(population, multi, fast_pool(procs), &report);
            const std::string label =
                "threads=" + std::to_string(threads) + " procs=" + std::to_string(procs);
            expect_same_sweep(reduced, baseline, label);
            EXPECT_EQ(report.chunks_recorded, report.chunks_total) << label;
            EXPECT_EQ(report.proc_restarts, 0u) << label;
            EXPECT_EQ(reduced.stats.proc_restarts, 0u) << label;
        }
    }
}

TEST_F(ProcPoolTest, ReducedSweepDeliversEagerPopulationBytes) {
    // The §15 purity contract across process boundaries: workers materialize
    // their chunks independently, yet every domain the reduce delivers must
    // match the eager wrapper's resident vector byte for byte, and the
    // deterministic telemetry must match the in-process streaming run.
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_single_process(population, options);
    for (const unsigned procs : {1u, 2u}) {
        ScanOptions multi = options;
        multi.journal_dir = (dir_ / ("eager_" + std::to_string(procs))).string();
        Campaign campaign{population.model(), multi};
        telemetry::MetricsRegistry registry;
        campaign.set_metrics(&registry);
        (void)run_procs(campaign, fast_pool(procs));
        SweepResult reduced;
        std::size_t byte_identical = 0;
        reduced.stats = campaign.reduce([&](const web::Domain& domain, DomainScan&& scan) {
            if (std::memcmp(&domain, &population.domains()[domain.id],
                            sizeof(web::Domain)) == 0) {
                ++byte_identical;
            }
            reduced.order.push_back(domain.id);
            reduced.stream += render_scan_stream(scan);
        });
        reduced.telemetry = telemetry::deterministic_csv(registry);
        EXPECT_EQ(byte_identical, population.domains().size()) << "procs=" << procs;
        expect_same_sweep(reduced, baseline, "eager-bytes procs=" + std::to_string(procs));
    }
}

TEST_F(ProcPoolTest, ReduceOfAnEmptyJournalDegeneratesToAFullScan) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_single_process(population, options);

    ScanOptions reduced_options = options;
    reduced_options.threads = 2;
    reduced_options.journal_dir = (dir_ / "empty_map").string();
    Campaign campaign{population, reduced_options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    SweepResult reduced;
    reduced.stats = campaign.reduce([&](const web::Domain& domain, DomainScan&& scan) {
        reduced.order.push_back(domain.id);
        reduced.stream += render_scan_stream(scan);
    });
    reduced.telemetry = telemetry::deterministic_csv(registry);
    expect_same_sweep(reduced, baseline, "reduce-from-empty");
}

TEST_F(ProcPoolTest, ReduceRescansDeletedChunksAndIsRerunnable) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.threads = 2;
    options.journal_dir = (dir_ / "partial").string();
    const SweepResult baseline = run_single_process(population, options);

    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    (void)run_procs(campaign, fast_pool(2));
    // Simulate lost records (e.g. chunks a crashed campaign never scanned).
    ASSERT_TRUE(std::filesystem::remove(map_chunk_path(options.journal_dir, 1)));
    ASSERT_TRUE(std::filesystem::remove(map_chunk_path(options.journal_dir, 5)));

    const auto collect = [](Campaign& c, SweepResult& out,
                            telemetry::MetricsRegistry& reg) {
        out.stats = c.reduce([&](const web::Domain& domain, DomainScan&& scan) {
            out.order.push_back(domain.id);
            out.stream += render_scan_stream(scan);
        });
        out.telemetry = telemetry::deterministic_csv(reg);
    };
    SweepResult first;
    collect(campaign, first, registry);
    expect_same_sweep(first, baseline, "reduce-with-gaps");

    // The rescan republished chunks 1 and 5: a second reduce (a reducer
    // killed after publishing but before finishing, then rerun) replays
    // everything without rescanning and matches byte-for-byte.
    Campaign again{population, options};
    telemetry::MetricsRegistry registry2;
    again.set_metrics(&registry2);
    SweepResult second;
    collect(again, second, registry2);
    expect_same_sweep(second, baseline, "reduce-rerun");
}

// --- Chaos kill-sweep --------------------------------------------------------

/// A worker_event_hook that SIGKILLs the worker the first time it reaches
/// (`phase`, `chunk`) — the marker file makes the kill once-per-sweep, so the
/// restarted incarnation completes the work.
ProcPoolOptions killing_pool(unsigned procs, const std::filesystem::path& marker_dir,
                             const char* phase, std::size_t chunk) {
    ProcPoolOptions pool = fast_pool(procs);
    const std::string phase_name = phase;
    pool.worker_event_hook = [marker_dir, phase_name, chunk](
                                 unsigned, const char* at, std::size_t c) {
        if (c != chunk || phase_name != at) return;
        const auto marker = marker_dir / ("killed_" + phase_name + "_" +
                                          std::to_string(c));
        if (util::create_file_exclusive(marker, "x\n")) {
            ::raise(SIGKILL);
        }
    };
    return pool;
}

TEST_F(ProcPoolTest, KillSweepAtEveryPhaseAndChunkIsByteIdentical) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const std::size_t chunks = Campaign{population, options}.chunk_count();
    ASSERT_GE(chunks, 7u);  // 3 phases x 7 chunks x 3 proc counts >= 20 kill points

    const unsigned proc_counts[] = {1, 2, 4};
    const char* phases[] = {"claim", "scanned", "published"};
    std::size_t point = 0;
    for (const unsigned procs : proc_counts) {
        // Alternate the thread count so the sweep covers threads x procs.
        ScanOptions swept = options;
        swept.threads = (procs % 2) + 1;
        const SweepResult baseline = run_single_process(population, swept);
        for (const char* phase : phases) {
            for (std::size_t chunk = 0; chunk < chunks; ++chunk, ++point) {
                const std::string label = "procs=" + std::to_string(procs) +
                                          " phase=" + phase +
                                          " chunk=" + std::to_string(chunk);
                const auto run_dir = dir_ / ("kill_" + std::to_string(point));
                std::filesystem::create_directories(run_dir);
                ScanOptions multi = swept;
                multi.journal_dir = (run_dir / "journal").string();
                ProcPoolReport report;
                const SweepResult reduced = run_multi_process(
                    population, multi, killing_pool(procs, run_dir, phase, chunk),
                    &report);
                expect_same_sweep(reduced, baseline, label);
                EXPECT_TRUE(std::filesystem::exists(
                    run_dir / ("killed_" + std::string{phase} + "_" +
                               std::to_string(chunk))))
                    << label << ": the kill point never fired";
                EXPECT_GE(report.proc_restarts + report.chunks_scanned_inline, 1u)
                    << label << ": a killed worker must be restarted or covered";
                EXPECT_EQ(report.chunks_recorded, report.chunks_total) << label;
            }
        }
    }
    EXPECT_GE(point, 20u) << "the sweep must cover at least 20 seeded kill points";
}

// --- Supervision: hangs, poison, budgets, attribution ------------------------

TEST_F(ProcPoolTest, HungWorkerIsKilledAndTheCampaignCompletes) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_single_process(population, options);

    ScanOptions multi = options;
    multi.journal_dir = (dir_ / "hang").string();
    ProcPoolOptions pool = fast_pool(2);
    pool.hang_deadline = util::Duration::millis(200);
    const auto marker_dir = dir_;
    pool.worker_event_hook = [marker_dir](unsigned, const char* phase, std::size_t c) {
        if (c != 2 || std::strcmp(phase, "claim") != 0) return;
        if (util::create_file_exclusive(marker_dir / "hung_once", "x\n")) {
            for (;;) ::usleep(50'000);  // wedge: no heartbeat, no progress
        }
    };
    ProcPoolReport report;
    const SweepResult reduced = run_multi_process(population, multi, pool, &report);
    expect_same_sweep(reduced, baseline, "hang-kill");
    EXPECT_GE(report.hang_kills, 1u);
    EXPECT_GE(report.proc_restarts + report.chunks_scanned_inline, 1u);
}

TEST_F(ProcPoolTest, ChunkThatKillsEveryProcessIsQuarantinedAndAttributed) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "poison").string();
    // Chunk 3 is poison: every process DIES MID-SCAN, every time. (The fault
    // hook rides into the worker via fork; it cannot reach the supervisor's
    // inline path because the quarantine lands before the workers run out.)
    options.chunk_fault_hook = [](std::size_t chunk) {
        if (chunk == 3) ::raise(SIGKILL);
    };
    ProcPoolOptions pool = fast_pool(2);
    pool.chunk_attempts = 2;

    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    const ProcPoolReport report = run_procs(campaign, pool);
    EXPECT_EQ(report.chunks_recorded, report.chunks_total);
    EXPECT_GE(report.chunks_quarantined, 1u);
    EXPECT_GE(report.proc_restarts, 1u);

    std::uint64_t quarantined_scans = 0;
    const CampaignStats stats =
        campaign.reduce([&](const web::Domain&, DomainScan&& scan) {
            if (scan.error.rfind("chunk quarantined:", 0) == 0) ++quarantined_scans;
        });
    EXPECT_EQ(stats.chunks_quarantined, 1u);
    EXPECT_EQ(quarantined_scans, options.chunk_domains);
    EXPECT_EQ(stats.domains_scanned,
              static_cast<std::uint64_t>(Campaign{population, options}.domain_count()));

    // Attribution: these were PROCESS deaths, not thread-level restarts.
    const auto* procs_counter = registry.find_counter("campaign.restarted_procs");
    ASSERT_NE(procs_counter, nullptr);
    EXPECT_GE(procs_counter->value(), 1u);
    EXPECT_EQ(registry.find_counter("campaign.restarted_workers"), nullptr);
}

TEST_F(ProcPoolTest, ThreadLevelRestartsInsideWorkersAreAttributedAsWorkers) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_single_process(population, options);

    ScanOptions multi = options;
    multi.journal_dir = (dir_ / "transient").string();
    multi.worker_restart.initial_backoff = util::Duration::millis(1);
    multi.worker_restart.max_backoff = util::Duration::millis(2);
    // The fault hook rides into the worker process: chunk 2's first scan
    // attempt throws there, is retried in-worker, and succeeds.
    const auto marker_dir = dir_;
    multi.chunk_fault_hook = [marker_dir](std::size_t chunk) {
        if (chunk != 2) return;
        if (util::create_file_exclusive(marker_dir / "threw_once", "x\n")) {
            throw std::runtime_error("injected transient chunk crash");
        }
    };
    ProcPoolReport report;
    telemetry::MetricsRegistry registry;
    const SweepResult reduced =
        run_multi_process(population, multi, fast_pool(2), &report, &registry);
    expect_same_sweep(reduced, baseline, "thread-restart");
    EXPECT_EQ(report.worker_thread_restarts, 1u);
    EXPECT_EQ(report.proc_restarts, 0u);
    const auto* workers_counter = registry.find_counter("campaign.restarted_workers");
    ASSERT_NE(workers_counter, nullptr);
    EXPECT_EQ(workers_counter->value(), 1u);
    EXPECT_EQ(registry.find_counter("campaign.restarted_procs"), nullptr);
}

TEST_F(ProcPoolTest, RssSoftBudgetDegradesBatchesWithoutChangingOutput) {
    const web::Population population = tiny_population();
    ScanOptions options;
    const SweepResult baseline = run_single_process(population, options);

    ScanOptions multi = options;
    multi.journal_dir = (dir_ / "rss").string();
    ProcPoolOptions pool = fast_pool(2);
    pool.lease_batch = 4;
    pool.rss_soft_budget = 1;  // any real process is over 1 byte of RSS
    ProcPoolReport report;
    telemetry::MetricsRegistry registry;
    const SweepResult reduced =
        run_multi_process(population, multi, pool, &report, &registry);
    expect_same_sweep(reduced, baseline, "rss-degraded");
    EXPECT_EQ(report.chunks_recorded, report.chunks_total);
    EXPECT_NE(registry.find_gauge("obs.proc.peak_worker_rss_bytes"), nullptr)
        << "workers must report their RSS over the heartbeat channel";
}

TEST_F(ProcPoolTest, PoolOptionValidationRejectsNonsense) {
    ProcPoolOptions pool;
    pool.procs = 0;
    EXPECT_THROW(pool.validate(), std::invalid_argument);
    pool = ProcPoolOptions{};
    pool.lease_batch = 0;
    EXPECT_THROW(pool.validate(), std::invalid_argument);
    pool = ProcPoolOptions{};
    pool.chunk_attempts = 0;
    EXPECT_THROW(pool.validate(), std::invalid_argument);
    pool = ProcPoolOptions{};
    pool.heartbeat_interval = util::Duration::zero();
    EXPECT_THROW(pool.validate(), std::invalid_argument);
    pool = ProcPoolOptions{};
    pool.hang_deadline = util::Duration::zero();
    EXPECT_THROW(pool.validate(), std::invalid_argument);
    pool = ProcPoolOptions{};
    pool.lease_ttl = util::Duration::zero();
    EXPECT_THROW(pool.validate(), std::invalid_argument);

    const web::Population population = tiny_population();
    Campaign no_journal{population, ScanOptions{}};
    EXPECT_THROW((void)run_procs(no_journal, ProcPoolOptions{}),
                 std::invalid_argument);
}

#endif  // !_WIN32

}  // namespace
}  // namespace spinscope::scanner
