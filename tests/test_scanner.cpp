// Unit and integration tests for the HTTP/3-mini protocol and the campaign
// scanner.

#include <gtest/gtest.h>

#include "scanner/campaign.hpp"
#include "util/format.hpp"
#include "scanner/http3_mini.hpp"
#include "web/population.hpp"

namespace spinscope::scanner {
namespace {

// --- HTTP/3-mini -------------------------------------------------------------

TEST(Http3Mini, RequestRoundTrip) {
    const auto request = build_request("www.example.org");
    const auto host = parse_request(request);
    ASSERT_TRUE(host.has_value());
    EXPECT_EQ(*host, "www.example.org");
}

TEST(Http3Mini, RequestCarriesResearchHint) {
    // The paper's ethics appendix: every request embeds a research hint.
    const auto request = build_request("www.example.org");
    const std::string text{request.begin(), request.end()};
    EXPECT_NE(text.find("research"), std::string::npos);
}

TEST(Http3Mini, RequestRejectsGarbage) {
    EXPECT_FALSE(parse_request({}).has_value());
    const std::string junk = "POST /";
    EXPECT_FALSE(parse_request(spinscope::util::as_bytes(junk)).has_value());
}

TEST(Http3Mini, OkResponseRoundTrip) {
    auto response = build_response_headers(200, "", "LiteSpeed");
    const auto body = build_body(500);
    response.insert(response.end(), body.begin(), body.end());
    const auto info = parse_response(response);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->status, 200);
    EXPECT_EQ(info->server_name, "LiteSpeed");
    EXPECT_TRUE(info->location.empty());
    EXPECT_EQ(info->body_bytes, 500u);
}

TEST(Http3Mini, RedirectResponseRoundTrip) {
    const auto response = build_response_headers(301, "example.org", "nginx-quic");
    const auto info = parse_response(response);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->status, 301);
    EXPECT_EQ(info->location, "example.org");
    EXPECT_EQ(info->body_bytes, 0u);
}

TEST(Http3Mini, ResponseRejectsGarbage) {
    EXPECT_FALSE(parse_response({}).has_value());
    const std::string junk = "HTTP/1.1 200 OK";
    EXPECT_FALSE(parse_response(spinscope::util::as_bytes(junk)).has_value());
}

TEST(Http3Mini, BodyIsDeterministicFiller) {
    const auto a = build_body(1000);
    const auto b = build_body(1000);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 1000u);
}

TEST(Http3Mini, SettingsDifferPerRole) {
    EXPECT_NE(build_settings(true), build_settings(false));
}

// --- Campaign ----------------------------------------------------------------

class CampaignTest : public ::testing::Test {
protected:
    CampaignTest() : population_{{20000.0, 20230520}} {}

    const web::Domain* find_domain(bool quic, bool resolves = true,
                                   bool want_spin_org = false) {
        for (const auto& d : population_.domains()) {
            if (d.resolves != resolves) continue;
            if (resolves && d.quic != quic) continue;
            if (want_spin_org && population_.org_of(d).spin_host_rate <= 0.3) continue;
            return &d;
        }
        return nullptr;
    }

    web::Population population_;
};

TEST_F(CampaignTest, UnresolvedDomainIsNotScanned) {
    const auto* domain = find_domain(false, false);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*domain);
    EXPECT_FALSE(scan.resolved);
    EXPECT_TRUE(scan.connections.empty());
    EXPECT_FALSE(scan.quic_ok());
}

TEST_F(CampaignTest, NonQuicDomainTimesOut) {
    const auto* domain = find_domain(false);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*domain);
    EXPECT_TRUE(scan.resolved);
    ASSERT_EQ(scan.connections.size(), 1u);
    EXPECT_EQ(scan.connections[0].outcome, qlog::ConnectionOutcome::handshake_timeout);
    EXPECT_FALSE(scan.quic_ok());
    // The client sent Initials (PTO retries) into the void.
    EXPECT_GE(scan.connections[0].sent.size(), 2u);
    EXPECT_TRUE(scan.connections[0].received.empty());
}

TEST_F(CampaignTest, QuicDomainCompletes) {
    const auto* domain = find_domain(true);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*domain);
    EXPECT_TRUE(scan.quic_ok());
    ASSERT_TRUE(scan.final_response.has_value());
    EXPECT_EQ(scan.final_response->status, 200);
    EXPECT_EQ(scan.final_response->server_name, population_.stack_of(*domain).name);
    // The final trace carries a usable stack baseline.
    EXPECT_FALSE(scan.connections.back().metrics.rtt_samples_ms.empty());
}

TEST_F(CampaignTest, HostsArePrefixedWithWww) {
    const auto* domain = find_domain(true);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*domain);
    ASSERT_FALSE(scan.connections.empty());
    EXPECT_EQ(scan.connections.front().host.rfind("www.", 0), 0u);
}

TEST_F(CampaignTest, RedirectsFollowedOnce) {
    const web::Domain* redirecting = nullptr;
    for (const auto& d : population_.domains()) {
        if (d.quic && d.redirects) {
            redirecting = &d;
            break;
        }
    }
    ASSERT_NE(redirecting, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*redirecting);
    ASSERT_EQ(scan.connections.size(), 2u);
    EXPECT_TRUE(scan.quic_ok());
    ASSERT_TRUE(scan.final_response.has_value());
    EXPECT_EQ(scan.final_response->status, 200);
    // Second connection targets the redirect location (no www prefix).
    EXPECT_NE(scan.connections[0].host, scan.connections[1].host);
}

TEST_F(CampaignTest, Ipv6ScanSkipsV4OnlyDomains) {
    const web::Domain* v4_only = nullptr;
    for (const auto& d : population_.domains()) {
        if (d.resolves && !d.has_ipv6) {
            v4_only = &d;
            break;
        }
    }
    ASSERT_NE(v4_only, nullptr);
    ScanOptions options;
    options.ipv6 = true;
    Campaign campaign{population_, options};
    const auto scan = campaign.scan_domain(*v4_only);
    EXPECT_FALSE(scan.resolved);
}

TEST_F(CampaignTest, ScanIsDeterministic) {
    const auto* domain = find_domain(true);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto a = campaign.scan_domain(*domain);
    const auto b = campaign.scan_domain(*domain);
    ASSERT_EQ(a.connections.size(), b.connections.size());
    for (std::size_t i = 0; i < a.connections.size(); ++i) {
        ASSERT_EQ(a.connections[i].received.size(), b.connections[i].received.size());
        for (std::size_t p = 0; p < a.connections[i].received.size(); ++p) {
            ASSERT_EQ(a.connections[i].received[p].time.count_nanos(),
                      b.connections[i].received[p].time.count_nanos());
            ASSERT_EQ(a.connections[i].received[p].spin, b.connections[i].received[p].spin);
        }
    }
}

TEST_F(CampaignTest, DifferentWeeksResampleBehaviour) {
    const auto* domain = find_domain(true, true, true);
    ASSERT_NE(domain, nullptr);
    ScanOptions week0;
    week0.week = 0;
    ScanOptions week9;
    week9.week = 9;
    const auto a = Campaign{population_, week0}.scan_domain(*domain);
    const auto b = Campaign{population_, week9}.scan_domain(*domain);
    EXPECT_TRUE(a.quic_ok());
    EXPECT_TRUE(b.quic_ok());
    // Packet timings differ across weeks (new RNG stream).
    ASSERT_FALSE(a.connections[0].received.empty());
    ASSERT_FALSE(b.connections[0].received.empty());
    EXPECT_NE(a.connections[0].received.back().time.count_nanos(),
              b.connections[0].received.back().time.count_nanos());
}

TEST_F(CampaignTest, StackRttBaselineNearConfiguredPathRtt) {
    const auto* domain = find_domain(true);
    ASSERT_NE(domain, nullptr);
    Campaign campaign{population_, {}};
    const auto scan = campaign.scan_domain(*domain);
    ASSERT_TRUE(scan.quic_ok());
    const auto& metrics = scan.connections.back().metrics;
    ASSERT_GT(metrics.min_rtt_ms, 0.0);
    EXPECT_NEAR(metrics.min_rtt_ms, domain->rtt_ms(), domain->rtt_ms() * 0.4 + 3.0);
}

TEST_F(CampaignTest, RunVisitsEveryDomain) {
    // A tiny population keeps the full sweep fast.
    web::Population tiny{{200000.0, 1}};
    Campaign campaign{tiny, {}};
    std::size_t visited = 0;
    campaign.run([&](const web::Domain&, DomainScan&&) { ++visited; });
    EXPECT_EQ(visited, tiny.domains().size());
}

TEST_F(CampaignTest, DeadlineWithPendingEventsIsAttemptTimeout) {
    // A deadline far below the handshake timeout cuts the simulation short
    // while timers are still queued: the attempt must be reported as
    // attempt_timeout, not conflated with a protocol-level abort.
    const auto* domain = find_domain(true);
    ASSERT_NE(domain, nullptr);
    ScanOptions options;
    options.attempt_deadline = util::Duration::micros(50);  // < one-way delay
    Campaign campaign{population_, options};
    const auto scan = campaign.scan_domain(*domain);
    ASSERT_EQ(scan.connections.size(), 1u);
    EXPECT_EQ(scan.connections[0].outcome, qlog::ConnectionOutcome::attempt_timeout);
    EXPECT_FALSE(scan.quic_ok());
}

TEST_F(CampaignTest, RunReturnsConsistentStats) {
    web::Population tiny{{200000.0, 1}};
    Campaign campaign{tiny, {}};
    std::uint64_t quic_ok_seen = 0;
    const CampaignStats stats =
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            if (scan.quic_ok()) ++quic_ok_seen;
        });
    EXPECT_EQ(stats.domains_scanned, tiny.domains().size());
    EXPECT_GE(stats.domains_scanned, stats.domains_resolved);
    EXPECT_GE(stats.domains_resolved, stats.domains_quic_ok);
    EXPECT_EQ(stats.domains_quic_ok, quic_ok_seen);
    // Every connection has exactly one outcome.
    std::uint64_t outcome_total = 0;
    for (const auto count : stats.outcomes) outcome_total += count;
    EXPECT_EQ(outcome_total, stats.connections);
    EXPECT_EQ(stats.outcome(qlog::ConnectionOutcome::ok) > 0, stats.domains_quic_ok > 0);
    EXPECT_GE(stats.quic_ok_rate(), 0.0);
    EXPECT_LE(stats.quic_ok_rate(), 1.0);
    EXPECT_GE(stats.wall_seconds, 0.0);
    // The snapshot renders (labels + outcome breakdown).
    const std::string rendered = stats.render();
    EXPECT_NE(rendered.find("domains scanned"), std::string::npos);
    EXPECT_NE(rendered.find("outcome ok"), std::string::npos);
}

TEST_F(CampaignTest, ProgressCallbackFiresEveryN) {
    web::Population tiny{{200000.0, 1}};
    Campaign campaign{tiny, {}};
    std::vector<std::uint64_t> checkpoints;
    campaign.set_progress(2, [&](const CampaignStats& stats) {
        checkpoints.push_back(stats.domains_scanned);
    });
    campaign.run([](const web::Domain&, DomainScan&&) {});
    ASSERT_EQ(checkpoints.size(), tiny.domains().size() / 2);
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        EXPECT_EQ(checkpoints[i], (i + 1) * 2);
    }
}

TEST_F(CampaignTest, MetricsRegistrySpansAllLayers) {
    web::Population tiny{{200000.0, 1}};
    Campaign campaign{tiny, {}};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    const auto stats = campaign.run([](const web::Domain&, DomainScan&&) {});

    // The sidecar's acceptance bar: >= 10 distinct metrics spanning netsim,
    // quic and scanner.
    EXPECT_GE(registry.size(), 10u);
    std::size_t netsim = 0;
    std::size_t quic = 0;
    std::size_t scanner = 0;
    const auto tally = [&](const std::string& name) {
        if (name.rfind("netsim.", 0) == 0) ++netsim;
        if (name.rfind("quic.", 0) == 0) ++quic;
        if (name.rfind("scanner.", 0) == 0) ++scanner;
    };
    for (const auto& entry : registry.counters()) tally(entry.first);
    for (const auto& entry : registry.gauges()) tally(entry.first);
    for (const auto& entry : registry.histograms()) tally(entry.first);
    EXPECT_GT(netsim, 0u);
    EXPECT_GT(quic, 0u);
    EXPECT_GT(scanner, 0u);

    // Cross-layer consistency: scanner counters match the returned stats,
    // and every attempt produced exactly one quic.conn attempt record.
    EXPECT_EQ(registry.counter("scanner.domains_scanned").value(), stats.domains_scanned);
    EXPECT_EQ(registry.counter("scanner.connections").value(), stats.connections);
    EXPECT_EQ(registry.counter("quic.conn.attempts").value(), stats.connections);
    EXPECT_EQ(registry.counter("scanner.outcome.ok").value(),
              stats.outcome(qlog::ConnectionOutcome::ok));
    // Phase histograms recorded one attempt-phase sample per first attempt.
    const auto* attempt_hist = registry.find_histogram("scanner.phase.attempt_ms");
    ASSERT_NE(attempt_hist, nullptr);
    EXPECT_EQ(attempt_hist->count(), stats.domains_resolved);
    // Simulated time was accounted separately from wall clock.
    const auto* sim_hist = registry.find_histogram("scanner.attempt_sim_ms");
    ASSERT_NE(sim_hist, nullptr);
    EXPECT_EQ(sim_hist->count(), stats.connections);
    // The simulator layer reported event totals.
    EXPECT_GT(registry.counter("netsim.sim.events_processed").value(), 0u);
    EXPECT_GT(registry.counter("netsim.sim.events.link.delivery").value(), 0u);
}

}  // namespace
}  // namespace spinscope::scanner
