// Unit tests for the synthetic web population: determinism, calibrated
// marginals, host pools and longitudinal spin behaviour.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "web/population.hpp"

namespace spinscope::web {
namespace {

PopulationConfig small_config() { return {20000.0, 20230520}; }

TEST(Population, DeterministicForSeed) {
    Population a{small_config()};
    Population b{small_config()};
    ASSERT_EQ(a.domains().size(), b.domains().size());
    for (std::size_t i = 0; i < a.domains().size(); ++i) {
        const auto& da = a.domains()[i];
        const auto& db = b.domains()[i];
        ASSERT_EQ(da.org, db.org);
        ASSERT_EQ(da.quic, db.quic);
        ASSERT_EQ(da.ipv4_host, db.ipv4_host);
        ASSERT_FLOAT_EQ(da.rtt_ms(), db.rtt_ms());
    }
}

TEST(Population, DifferentSeedsDiffer) {
    Population a{{20000.0, 1}};
    Population b{{20000.0, 2}};
    ASSERT_EQ(a.domains().size(), b.domains().size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.domains().size(); ++i) {
        if (a.domains()[i].quic != b.domains()[i].quic ||
            a.domains()[i].org != b.domains()[i].org) {
            ++differing;
        }
    }
    EXPECT_GT(differing, a.domains().size() / 100);
}

TEST(Population, SegmentCountsScale) {
    Population pop{small_config()};
    std::map<Segment, std::size_t> counts;
    for (const auto& d : pop.domains()) ++counts[d.segment()];
    // 183.0M / 20000 ~ 9152, (216.5-183.0)M / 20000 ~ 1673.
    EXPECT_NEAR(static_cast<double>(counts[Segment::czds_cno]), 9152.0, 5.0);
    EXPECT_NEAR(static_cast<double>(counts[Segment::czds_other]), 1673.0, 5.0);
    EXPECT_GT(counts[Segment::toplist_extra], 30u);
}

TEST(Population, ResolveAndQuicRatesMatchShape) {
    Population pop{{2000.0, 7}};
    std::size_t cno_total = 0;
    std::size_t cno_resolved = 0;
    std::size_t cno_quic = 0;
    for (const auto& d : pop.domains()) {
        if (d.segment() != Segment::czds_cno || d.on_toplist) continue;
        ++cno_total;
        if (d.resolves) ++cno_resolved;
        if (d.quic) ++cno_quic;
    }
    const auto& shape = pop.shape();
    EXPECT_NEAR(static_cast<double>(cno_resolved) / cno_total, shape.resolve_cno, 0.01);
    EXPECT_NEAR(static_cast<double>(cno_quic) / cno_resolved, shape.quic_cno, 0.01);
}

TEST(Population, QuicImpliesResolves) {
    Population pop{small_config()};
    for (const auto& d : pop.domains()) {
        if (d.quic) {
            ASSERT_TRUE(d.resolves);
        }
    }
}

TEST(Population, OrgWeightsRoughlyRespected) {
    Population pop{{2000.0, 9}};
    std::map<std::string, std::size_t> quic_by_org;
    std::size_t quic_total = 0;
    for (const auto& d : pop.domains()) {
        if (d.segment() != Segment::czds_cno || !d.quic || d.on_toplist) continue;
        ++quic_by_org[pop.org_of(d).name];
        ++quic_total;
    }
    ASSERT_GT(quic_total, 1000u);
    EXPECT_NEAR(static_cast<double>(quic_by_org["Cloudflare"]) / quic_total, 0.504, 0.03);
    EXPECT_NEAR(static_cast<double>(quic_by_org["Google"]) / quic_total, 0.270, 0.03);
    EXPECT_NEAR(static_cast<double>(quic_by_org["Hostinger"]) / quic_total, 0.068, 0.015);
}

TEST(Population, HostIndicesWithinPool) {
    Population pop{small_config()};
    for (const auto& d : pop.domains()) {
        if (!d.resolves) continue;
        ASSERT_LT(d.ipv4_host, pop.ipv4_pool(d.org));
        ASSERT_LT(d.ipv6_host, pop.ipv6_pool(d.org));
    }
}

TEST(Population, SharedHostingDensity) {
    Population pop{{2000.0, 11}};
    // Cloudflare serves many domains per IP, small hosters far fewer.
    std::map<std::uint64_t, std::size_t> per_host;
    std::size_t cloudflare_domains = 0;
    for (const auto& d : pop.domains()) {
        if (!d.quic) continue;
        if (pop.org_of(d).name != "Cloudflare") continue;
        ++per_host[pop.host_key(d, false)];
        ++cloudflare_domains;
    }
    ASSERT_GT(cloudflare_domains, 100u);
    const double density =
        static_cast<double>(cloudflare_domains) / static_cast<double>(per_host.size());
    EXPECT_GT(density, 50.0);
}

TEST(Population, HostKeyDistinguishesFamiliesAndOrgs) {
    Population pop{small_config()};
    const Domain* a = nullptr;
    for (const auto& d : pop.domains()) {
        if (d.resolves) {
            a = &d;
            break;
        }
    }
    ASSERT_NE(a, nullptr);
    EXPECT_NE(pop.host_key(*a, false), pop.host_key(*a, true));
}

TEST(Population, RttsAreSane) {
    Population pop{small_config()};
    for (const auto& d : pop.domains()) {
        if (!d.resolves) continue;
        ASSERT_GE(d.rtt_ms(), 0.8F);
        ASSERT_LE(d.rtt_ms(), 400.0F);
    }
}

TEST(Population, HyperscalersNeverSpin) {
    Population pop{{2000.0, 13}};
    for (const auto& d : pop.domains()) {
        if (!d.quic) continue;
        const auto& org = pop.org_of(d);
        if (org.name == "Cloudflare" || org.name == "Fastly") {
            for (int week : {0, 20, 57}) {
                ASSERT_FALSE(pop.host_spins(d, week, false));
                ASSERT_FALSE(pop.host_spins(d, week, true));
            }
        }
    }
}

TEST(Population, SpinEnableRateTracksProfile) {
    Population pop{{1000.0, 20230520}};
    std::size_t hostinger = 0;
    std::size_t enabled = 0;
    for (const auto& d : pop.domains()) {
        if (!d.quic || pop.org_of(d).name != "Hostinger") continue;
        ++hostinger;
        if (pop.host_spins(d, 57, false)) ++enabled;
    }
    ASSERT_GT(hostinger, 500u);
    const double rate = pop.orgs()[2].spin_host_rate;  // Hostinger profile
    EXPECT_EQ(pop.orgs()[2].name, "Hostinger");
    EXPECT_NEAR(static_cast<double>(enabled) / hostinger, rate, 0.10);
}

TEST(Population, StableHostsKeepStateAcrossWeeks) {
    Population pop{{4000.0, 3}};
    // With churn, week-to-week flips happen but most states persist.
    std::size_t transitions = 0;
    std::size_t observations = 0;
    for (const auto& d : pop.domains()) {
        if (!d.quic || pop.org_of(d).spin_host_rate <= 0.0) continue;
        bool last = pop.host_spins(d, 0, false);
        for (int week = 1; week < 10; ++week) {
            const bool now = pop.host_spins(d, week, false);
            ++observations;
            if (now != last) ++transitions;
            last = now;
        }
    }
    ASSERT_GT(observations, 1000u);
    EXPECT_LT(static_cast<double>(transitions) / observations, 0.25);
    EXPECT_GT(transitions, 0u);
}

TEST(Population, HostSpinsDeterministicPerWeek) {
    Population pop{{4000.0, 5}};
    for (const auto& d : pop.domains()) {
        if (!d.quic) continue;
        for (int week : {0, 3, 57}) {
            ASSERT_EQ(pop.host_spins(d, week, false), pop.host_spins(d, week, false));
        }
    }
}

TEST(Population, DisabledPolicyMostlyZero) {
    Population pop{{2000.0, 17}};
    std::map<quic::SpinPolicy, std::size_t> counts;
    std::size_t total = 0;
    for (const auto& d : pop.domains()) {
        if (!d.quic) continue;
        ++counts[pop.host_disabled_policy(d, false)];
        ++total;
    }
    ASSERT_GT(total, 5000u);
    EXPECT_GT(static_cast<double>(counts[quic::SpinPolicy::always_zero]) / total, 0.99);
    EXPECT_GT(counts[quic::SpinPolicy::always_one], 0u);
    EXPECT_LT(static_cast<double>(counts[quic::SpinPolicy::always_one]) / total, 0.01);
}

TEST(Population, NamesAndAddressesWellFormed) {
    Population pop{small_config()};
    const auto& d = pop.domains().front();
    const auto name = pop.domain_name(d);
    EXPECT_EQ(name.find("d0"), 0u);
    EXPECT_NE(name.find('.'), std::string::npos);
    const auto v4 = pop.host_address(d, false);
    EXPECT_EQ(v4.find("10."), 0u);
    const auto v6 = pop.host_address(d, true);
    EXPECT_EQ(v6.find("fd00:"), 0u);
}

TEST(Population, StacksCoverProfiles) {
    Population pop{small_config()};
    ASSERT_EQ(pop.stacks().size(), kStackCount);
    for (const auto& org : pop.orgs()) {
        ASSERT_LT(org.stack, pop.stacks().size());
    }
    EXPECT_EQ(pop.stacks()[kStackLiteSpeed].name, "LiteSpeed");
    // LiteSpeed-family stacks participate in spinning when enabled.
    EXPECT_EQ(pop.stacks()[kStackLiteSpeed].spin_enabled.policy, quic::SpinPolicy::spin);
    EXPECT_EQ(pop.stacks()[kStackLiteSpeed].spin_enabled.lottery_one_in, 16u);
}

TEST(Population, ToplistFlagPlacement) {
    Population pop{{2000.0, 19}};
    std::size_t toplist = 0;
    std::size_t extra = 0;
    for (const auto& d : pop.domains()) {
        if (d.on_toplist) ++toplist;
        if (d.segment() == Segment::toplist_extra) {
            ++extra;
            ASSERT_TRUE(d.on_toplist);
        }
    }
    // ~2.73M/2000 total toplist entries, 30 % outside CZDS.
    EXPECT_NEAR(static_cast<double>(toplist), 2732702.0 / 2000.0, 120.0);
    EXPECT_NEAR(static_cast<double>(extra), 0.3 * 2732702.0 / 2000.0, 40.0);
}

bool same_bytes(const Domain& a, const Domain& b) {
    return std::memcmp(&a, &b, sizeof(Domain)) == 0;
}

TEST(DomainPacking, StaysWithinSixteenBytes) {
    // The header static_asserts <= 16; the layout leaves no padding either.
    EXPECT_EQ(sizeof(Domain), 16u);
}

TEST(DomainPacking, FieldsRoundTripAtTheirExtremes) {
    Domain d;
    d.id = 0xFFFFFFFFU;
    d.org = 0xFFFFU;
    d.ipv4_host = (1U << 28) - 1;
    d.ipv6_host = (1U << 28) - 1;
    d.resolves = 1;
    d.quic = 1;
    d.on_toplist = 1;
    d.has_ipv6 = 1;
    d.redirects = 1;
    d.set_segment(Segment::toplist_extra);
    d.set_rtt_ms(400.0);
    EXPECT_EQ(d.id, 0xFFFFFFFFU);
    EXPECT_EQ(d.org, 0xFFFFU);
    EXPECT_EQ(d.ipv4_host, (1U << 28) - 1);
    EXPECT_EQ(d.ipv6_host, (1U << 28) - 1);
    EXPECT_EQ(d.segment(), Segment::toplist_extra);
    EXPECT_FLOAT_EQ(d.rtt_ms(), 400.0F);
    EXPECT_TRUE(d.resolves && d.quic && d.on_toplist && d.has_ipv6 && d.redirects);
    // Clearing one bitfield must not disturb its neighbours.
    d.quic = 0;
    EXPECT_TRUE(d.resolves);
    EXPECT_EQ(d.ipv4_host, (1U << 28) - 1);
    EXPECT_EQ(d.segment(), Segment::toplist_extra);
    // RTT quantization: tenths of a millisecond, round-to-nearest.
    d.set_rtt_ms(12.34);
    EXPECT_FLOAT_EQ(d.rtt_ms(), 12.3F);
    d.set_rtt_ms(0.8);
    EXPECT_FLOAT_EQ(d.rtt_ms(), 0.8F);
}

TEST(PopulationModel, EagerAndStreamingAreByteIdentical) {
    // The §15 golden sweep: the eager wrapper and chunked streaming must
    // produce the same bytes at every test scale, for awkward chunk sizes.
    for (const double scale : {20000.0, 6000.0, 2000.0}) {
        const PopulationConfig config{scale, 20230520};
        const Population eager{config};
        const PopulationModel model{config};
        ASSERT_EQ(eager.domains().size(), model.domain_count());
        for (const std::size_t chunk_domains :
             {std::size_t{1}, std::size_t{97}, std::size_t{1024}}) {
            std::size_t checked = 0;
            for (std::size_t chunk = 0;; ++chunk) {
                const DomainBlock block = model.materialize_chunk(chunk, chunk_domains);
                if (block.size() == 0) break;
                ASSERT_EQ(block.begin, chunk * chunk_domains);
                for (std::size_t i = 0; i < block.size(); ++i) {
                    ASSERT_TRUE(same_bytes(block.domains[i],
                                           eager.domains()[block.begin + i]))
                        << "scale " << scale << " chunk_domains " << chunk_domains
                        << " id " << block.begin + i;
                }
                checked += block.size();
            }
            ASSERT_EQ(checked, model.domain_count());
        }
    }
}

TEST(PopulationModel, MaterializeIsChunkAndOrderIndependent) {
    // ~10k randomized cases of the purity contract: materialize(begin, end)
    // must not depend on chunk size, on the order ranges are asked for, or
    // on what else was materialized in between.
    const PopulationConfig config{20000.0, 20230520};
    const PopulationModel model{config};
    const PopulationModel other{{2000.0, 7}};  // interleaved foreign universe
    const std::size_t count = model.domain_count();
    const DomainBlock reference = model.materialize(0, count);
    ASSERT_EQ(reference.size(), count);

    util::Rng rng{0x5eedU};
    for (int tc = 0; tc < 10000; ++tc) {
        const auto begin = static_cast<std::size_t>(rng.uniform_u64(count));
        const auto len = static_cast<std::size_t>(1 + rng.uniform_u64(64));
        const auto end = std::min(begin + len, count);
        // Interleave unrelated materializations: a different range of this
        // model and a chunk of a differently-scaled one.
        if (tc % 7 == 0) {
            (void)model.materialize_chunk(rng.uniform_u64(64), 16);
            (void)other.materialize_chunk(rng.uniform_u64(64), 16);
        }
        const DomainBlock block = model.materialize(begin, end);
        ASSERT_EQ(block.begin, begin);
        ASSERT_EQ(block.size(), end - begin);
        for (std::size_t i = 0; i < block.size(); ++i) {
            ASSERT_TRUE(same_bytes(block.domains[i], reference.domains[begin + i]))
                << "case " << tc << " id " << begin + i;
        }
        // Single-domain regeneration agrees with the block too.
        const auto probe = static_cast<std::uint32_t>(begin);
        ASSERT_TRUE(same_bytes(model.domain(probe), reference.domains[begin]));
    }
}

}  // namespace
}  // namespace spinscope::web
