// Differential suite for the constrained on-path observer (DESIGN.md §14).
//
// The contract under test: core::ConstrainedMonitor with its constraints
// lifted (a table far larger than the flow universe, eviction off, sampling
// 1:1) agrees with the idealized core::FlowMonitor flow-for-flow on the same
// interleaved datagram stream — exactly on every counter, and within the
// documented integer-EWMA precision bound on the RTT estimate. Under
// constraints, every packet the constrained monitor loses relative to the
// idealized one is explained, to the packet, by its collision / eviction /
// sampling counters (the seeded ~10k-case property sweep).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/constrained_monitor.hpp"
#include "core/flow_monitor.hpp"
#include "netsim/link.hpp"
#include "quic/packet.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace spinscope::core {
namespace {

using util::Duration;
using util::Rng;
using util::TimePoint;

netsim::Datagram short_packet(std::uint64_t cid, bool spin, quic::PacketNumber pn) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(cid);
    header.packet_number = pn;
    header.spin = spin;
    netsim::Datagram wire;
    quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
    return wire;
}

TimePoint at_us(std::int64_t us) { return TimePoint::origin() + Duration::micros(us); }

/// One observed packet of a synthetic interleaved stream.
struct StreamEvent {
    std::int64_t time_us = 0;
    std::uint64_t key = 0;
    bool spin = false;
};

/// Builds an interleaved multi-flow stream: each flow flips its spin value
/// at its own cadence with jittered inter-packet gaps, then all flows are
/// merged in time order. Pure function of (rng, keys).
std::vector<StreamEvent> interleaved_stream(Rng& rng, const std::vector<std::uint64_t>& keys,
                                            int packets_per_flow) {
    std::vector<StreamEvent> events;
    events.reserve(keys.size() * static_cast<std::size_t>(packets_per_flow));
    for (const std::uint64_t key : keys) {
        std::int64_t t_us = static_cast<std::int64_t>(rng.uniform_u64(5'000));
        bool spin = rng.coin();
        const std::uint64_t flip_every = 1 + rng.uniform_u64(4);
        for (int p = 0; p < packets_per_flow; ++p) {
            if (p > 0 && static_cast<std::uint64_t>(p) % flip_every == 0) spin = !spin;
            t_us += 1'000 + static_cast<std::int64_t>(rng.uniform_u64(9'000));
            events.push_back(StreamEvent{t_us, key, spin});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const StreamEvent& a, const StreamEvent& b) {
                         if (a.time_us != b.time_us) return a.time_us < b.time_us;
                         return a.key < b.key;
                     });
    return events;
}

/// Feeds the same stream to both monitors.
void drive_both(const std::vector<StreamEvent>& events, FlowMonitor& idealized,
                ConstrainedMonitor& constrained) {
    quic::PacketNumber pn = 0;
    for (const StreamEvent& event : events) {
        const netsim::Datagram wire = short_packet(event.key, event.spin, pn++);
        idealized.on_datagram(at_us(event.time_us), wire);
        constrained.on_datagram(at_us(event.time_us), wire);
    }
}

/// Keys whose table slots are pairwise distinct (rejection sampling), so an
/// unbounded-configuration run is collision-free by construction.
std::vector<std::uint64_t> collision_free_keys(Rng& rng, const ConstrainedMonitor& monitor,
                                               std::size_t count) {
    std::vector<std::uint64_t> keys;
    std::vector<std::size_t> used;
    while (keys.size() < count) {
        const std::uint64_t key = rng.next();
        if (key == 0) continue;
        const std::size_t slot = monitor.slot_of(key);
        if (std::find(used.begin(), used.end(), slot) != used.end()) continue;
        used.push_back(slot);
        keys.push_back(key);
    }
    return keys;
}

/// Total packets the idealized monitor attributed to flows.
std::uint64_t idealized_tracked(const FlowMonitor& monitor) {
    std::uint64_t total = 0;
    for (const auto& [key, stats] : monitor.flows()) total += stats.packets;
    return total;
}

// --- differential equivalence (constraints lifted) --------------------------

TEST(ConstrainedDifferential, UnboundedConfigMatchesFlowMonitorFlowForFlow) {
    ConstrainedConfig config;
    config.log2_slots = 18;  // 262144 slots for 64 flows: effectively unbounded
    config.eviction = EvictionPolicy::none;
    config.sample_every = 1;
    config.ewma_shift = 3;  // same 1/8 weight as the float path
    ConstrainedMonitor constrained{config};
    FlowMonitor idealized;

    Rng rng{0x5eed'd1ffULL};
    const auto keys = collision_free_keys(rng, constrained, 64);
    const auto events = interleaved_stream(rng, keys, 200);
    drive_both(events, idealized, constrained);

    // No constraint fired: the table behaved as if unbounded.
    const ConstrainedTableCounters& t = constrained.counters();
    EXPECT_EQ(t.collisions, 0u);
    EXPECT_EQ(t.evictions, 0u);
    EXPECT_EQ(t.untracked, 0u);
    EXPECT_EQ(t.sampled_out, 0u);
    EXPECT_EQ(t.non_flow, 0u);
    EXPECT_EQ(t.offered, events.size());
    EXPECT_EQ(t.tracked, events.size());

    EXPECT_EQ(constrained.flow_count(), idealized.flow_count());
    ASSERT_EQ(constrained.flow_count(), keys.size());

    for (const std::uint64_t key : keys) {
        const auto ideal = idealized.find_key(key);
        const auto hard = constrained.find_key(key);
        ASSERT_TRUE(ideal.has_value());
        ASSERT_TRUE(hard.has_value());
        // Integer-exact surface: acceptance decisions are int64 nanosecond
        // comparisons on both paths, so these must agree to the packet.
        EXPECT_EQ(hard->packets, ideal->packets);
        EXPECT_EQ(hard->edge_count, ideal->spin.edge_count);
        EXPECT_EQ(hard->samples, ideal->spin.samples_ms.size());
        EXPECT_EQ(hard->rejected_samples, ideal->rejected_samples);
        EXPECT_EQ(hard->saw_zero, ideal->spin.saw_zero);
        EXPECT_EQ(hard->saw_one, ideal->spin.saw_one);
        // Float-equivalent EWMA scaling: the integer estimate tracks the
        // float one within the §14 precision bound (~2 µs steady state;
        // 10 µs leaves margin without masking real divergence).
        if (hard->has_estimate) {
            EXPECT_NEAR(hard->srtt_ms(), ideal->smoothed_rtt_ms, 0.010)
                << "flow key " << key;
        } else {
            EXPECT_EQ(ideal->smoothed_rtt_ms, 0.0);
        }
    }

    // Snapshot keying agrees too: both render the raw key as lowercase hex.
    const auto ideal_flows = idealized.flows();
    const auto hard_flows = constrained.flows();
    ASSERT_EQ(ideal_flows.size(), hard_flows.size());
    for (const auto& [hex, stats] : ideal_flows) {
        EXPECT_TRUE(constrained.find(hex).has_value()) << hex;
    }
}

TEST(ConstrainedDifferential, MinPlausibleRejectionIsIntegerExact) {
    ConstrainedConfig config;
    config.log2_slots = 12;
    config.min_plausible_rtt = Duration::millis(20);
    ConstrainedMonitor constrained{config};
    ObserverConfig observer_config;
    observer_config.min_plausible_rtt = Duration::millis(20);
    FlowMonitor idealized{observer_config};

    Rng rng{0x00ed'0e11ULL};
    const auto keys = collision_free_keys(rng, constrained, 16);
    // 1–10 ms gaps with flips every 1–5 packets: many intervals straddle the
    // 20 ms floor, exercising the accept/reject boundary on both paths.
    const auto events = interleaved_stream(rng, keys, 300);
    drive_both(events, idealized, constrained);

    std::size_t rejected_total = 0;
    for (const std::uint64_t key : keys) {
        const auto ideal = idealized.find_key(key);
        const auto hard = constrained.find_key(key);
        ASSERT_TRUE(ideal.has_value());
        ASSERT_TRUE(hard.has_value());
        EXPECT_EQ(hard->rejected_samples, ideal->rejected_samples);
        EXPECT_EQ(hard->samples, ideal->spin.samples_ms.size());
        rejected_total += hard->rejected_samples;
    }
    EXPECT_GT(rejected_total, 0u);  // the floor actually fired
}

// --- seeded property sweep (collision-heavy universes) -----------------------

TEST(ConstrainedProperty, DeltaExplainedByCountersAcross10kCases) {
    // ~10k seeded cases over a 16-slot table and tiny key universes: heavy
    // collisions, all three eviction policies, all sampling rates. The
    // invariant: the constrained/idealized tracked-packet delta is exactly
    // the packets the counters say were sampled out or lost to collisions.
    constexpr int kCases = 10'000;
    constexpr EvictionPolicy kPolicies[] = {EvictionPolicy::none, EvictionPolicy::lru,
                                            EvictionPolicy::random};
    for (int c = 0; c < kCases; ++c) {
        Rng rng{util::derive_stream_seed(0xc011'ec7edULL, static_cast<std::uint64_t>(c))};
        ConstrainedConfig config;
        config.log2_slots = 4;  // 16 slots
        config.eviction = kPolicies[c % 3];
        config.sample_every = static_cast<std::uint32_t>(1 + rng.uniform_u64(4));
        config.lru_idle_packets = 1 + rng.uniform_u64(16);
        ConstrainedMonitor constrained{config};
        FlowMonitor idealized;

        // Keys drawn from a universe of <= 24 values: far more flows than
        // distinct slots, so slot fights are the norm, not the exception.
        const std::size_t universe = 2 + rng.uniform_u64(22);
        std::vector<std::uint64_t> keys;
        keys.reserve(universe);
        for (std::size_t k = 0; k < universe; ++k) {
            keys.push_back(0x1000 + k);  // dense keys: hash quality is not the test
        }
        const auto events =
            interleaved_stream(rng, keys, static_cast<int>(2 + rng.uniform_u64(14)));
        drive_both(events, idealized, constrained);

        const ConstrainedTableCounters& t = constrained.counters();
        // Identity 1: every offered datagram lands in exactly one bucket.
        ASSERT_EQ(t.offered, t.non_flow + t.sampled_out + t.tracked + t.untracked)
            << "case " << c;
        // Identity 2: a collision either evicts or leaves the packet untracked.
        ASSERT_EQ(t.collisions, t.untracked + t.evictions) << "case " << c;
        // Identity 3: both monitors classify flow/non-flow identically.
        ASSERT_EQ(t.non_flow, idealized.non_flow_packets()) << "case " << c;
        ASSERT_EQ(t.offered, events.size()) << "case " << c;
        // Identity 4 (the differential): packets the idealized monitor
        // tracked but the constrained one did not are EXACTLY the sampled-out
        // plus collision-untracked ones. Eviction losses do not appear here —
        // an evicting packet is still tracked (by the usurping flow).
        ASSERT_EQ(idealized_tracked(idealized) - t.tracked, t.sampled_out + t.untracked)
            << "case " << c;
        // The table can never hold more flows than slots or than exist.
        ASSERT_LE(constrained.flow_count(), std::size_t{16}) << "case " << c;
        ASSERT_LE(constrained.flow_count(), idealized.flow_count()) << "case " << c;
    }
}

// --- eviction policies -------------------------------------------------------

/// A key != `resident` hashing onto the same slot.
std::uint64_t colliding_key(const ConstrainedMonitor& monitor, std::uint64_t resident) {
    const std::size_t target = monitor.slot_of(resident);
    for (std::uint64_t candidate = 1;; ++candidate) {
        if (candidate != resident && monitor.slot_of(candidate) == target) return candidate;
    }
}

TEST(ConstrainedEviction, DropNewKeepsResident) {
    ConstrainedConfig config;
    config.log2_slots = 4;
    config.eviction = EvictionPolicy::none;
    ConstrainedMonitor monitor{config};

    const std::uint64_t resident = 0xaaaa;
    const std::uint64_t intruder = colliding_key(monitor, resident);
    monitor.on_datagram(at_us(0), short_packet(resident, false, 0));
    monitor.on_datagram(at_us(1'000), short_packet(intruder, true, 1));

    EXPECT_EQ(monitor.counters().collisions, 1u);
    EXPECT_EQ(monitor.counters().untracked, 1u);
    EXPECT_EQ(monitor.counters().evictions, 0u);
    EXPECT_TRUE(monitor.find_key(resident).has_value());
    EXPECT_FALSE(monitor.find_key(intruder).has_value());
}

TEST(ConstrainedEviction, LruEvictsIdleResidentOnly) {
    ConstrainedConfig config;
    config.log2_slots = 4;
    config.eviction = EvictionPolicy::lru;
    config.lru_idle_packets = 4;
    ConstrainedMonitor monitor{config};

    const std::uint64_t resident = 0xbbbb;
    const std::uint64_t intruder = colliding_key(monitor, resident);
    monitor.on_datagram(at_us(0), short_packet(resident, false, 0));

    // Fresh resident: the intruder must be dropped, not the resident.
    monitor.on_datagram(at_us(1'000), short_packet(intruder, true, 1));
    EXPECT_EQ(monitor.counters().untracked, 1u);
    EXPECT_TRUE(monitor.find_key(resident).has_value());

    // Let the resident go idle past the threshold (other, non-colliding
    // traffic advances the packet clock), then collide again: now it is
    // evicted and the intruder takes the slot.
    std::uint64_t filler = 0x1'0000;
    int sent = 0;
    while (sent < 6) {
        ++filler;
        if (monitor.slot_of(filler) == monitor.slot_of(resident)) continue;
        monitor.on_datagram(at_us(2'000 + sent * 100), short_packet(filler, false, 2));
        ++sent;
    }
    monitor.on_datagram(at_us(10'000), short_packet(intruder, true, 3));
    EXPECT_EQ(monitor.counters().evictions, 1u);
    EXPECT_FALSE(monitor.find_key(resident).has_value());
    EXPECT_TRUE(monitor.find_key(intruder).has_value());
    EXPECT_EQ(monitor.counters().collisions,
              monitor.counters().untracked + monitor.counters().evictions);
}

TEST(ConstrainedEviction, RandomReplacementIsDeterministicPerStream) {
    const auto run_once = [] {
        ConstrainedConfig config;
        config.log2_slots = 3;  // 8 slots
        config.eviction = EvictionPolicy::random;
        ConstrainedMonitor monitor{config};
        Rng rng{0x7a2d'0123ULL};
        std::vector<std::uint64_t> keys;
        for (std::uint64_t k = 0; k < 40; ++k) keys.push_back(0x2000 + k);
        const auto events = interleaved_stream(rng, keys, 12);
        FlowMonitor idealized;
        ConstrainedMonitor constrained = std::move(monitor);
        drive_both(events, idealized, constrained);
        return constrained.counters();
    };
    const ConstrainedTableCounters a = run_once();
    const ConstrainedTableCounters b = run_once();
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.untracked, b.untracked);
    EXPECT_EQ(a.tracked, b.tracked);
    EXPECT_GT(a.evictions, 0u);  // the coin actually lands on both sides
    EXPECT_GT(a.untracked, 0u);
    EXPECT_EQ(a.collisions, a.untracked + a.evictions);
}

// --- sampling ----------------------------------------------------------------

TEST(ConstrainedSampling, OneInNCountsSkippedPacketsAndTouchesNoSlot) {
    ConstrainedConfig config;
    config.log2_slots = 8;
    config.sample_every = 3;
    ConstrainedMonitor monitor{config};

    for (int p = 0; p < 30; ++p) {
        monitor.on_datagram(at_us(p * 10'000), short_packet(0xcccc, (p / 3) % 2 == 1, 0));
    }
    const ConstrainedTableCounters& t = monitor.counters();
    EXPECT_EQ(t.offered, 30u);
    EXPECT_EQ(t.tracked, 10u);
    EXPECT_EQ(t.sampled_out, 20u);
    const auto stats = monitor.find_key(0xcccc);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->packets, 10u);
}

// --- adversarial robustness (satellite: both monitors side by side) ----------

/// Runs one corpus through both monitors and asserts the shared sanity
/// contract: identical flow/non-flow classification and the accounting
/// identity — i.e. no adversarial datagram is ever double-counted or
/// counted as tracked without being a well-formed short-header packet.
void adversarial_sweep(const std::vector<std::vector<std::uint8_t>>& corpus) {
    ConstrainedConfig config;
    config.log2_slots = 6;
    config.eviction = EvictionPolicy::lru;
    config.lru_idle_packets = 8;
    ConstrainedMonitor constrained{config};
    FlowMonitor idealized;
    std::int64_t t_us = 0;
    for (const auto& datagram : corpus) {
        ++t_us;
        idealized.on_datagram(at_us(t_us), datagram);
        constrained.on_datagram(at_us(t_us), datagram);
    }
    const ConstrainedTableCounters& t = constrained.counters();
    EXPECT_EQ(t.offered, corpus.size());
    EXPECT_EQ(t.offered, t.non_flow + t.sampled_out + t.tracked + t.untracked);
    EXPECT_EQ(t.collisions, t.untracked + t.evictions);
    EXPECT_EQ(t.non_flow, idealized.non_flow_packets());
    EXPECT_EQ(idealized_tracked(idealized) - t.tracked, t.sampled_out + t.untracked);
}

TEST(ConstrainedRobustness, SurvivesRandomJunkCorpus) {
    // The codec-fuzz generator of test_quic_robustness: random buffers of
    // 1..80 bytes. Some will parse as short headers — the identity above
    // checks they are then counted consistently by both monitors.
    Rng fuzz{0xfeed'beefULL};
    std::vector<std::vector<std::uint8_t>> corpus;
    corpus.reserve(20'000);
    for (int i = 0; i < 20'000; ++i) {
        std::vector<std::uint8_t> junk(fuzz.uniform_u64(80) + 1);
        for (auto& byte : junk) byte = static_cast<std::uint8_t>(fuzz.next());
        corpus.push_back(std::move(junk));
    }
    adversarial_sweep(corpus);
}

TEST(ConstrainedRobustness, TruncatedAndDegenerateDatagramsAreNonFlow) {
    std::vector<std::vector<std::uint8_t>> corpus = {
        {},                  // empty
        {0x40},              // short header flag, no DCID at all
        {0x40, 0x01},        // truncated DCID
        {0x00, 0x00},        // fixed bit clear: not QUIC v1
        {0xc0},              // long header flag, nothing else
        {0x40, 1, 2, 3, 4, 5, 6, 7},  // one byte short of an 8-byte DCID
    };
    ConstrainedMonitor constrained{ConstrainedConfig{}};
    FlowMonitor idealized;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        idealized.on_datagram(at_us(static_cast<std::int64_t>(i)), corpus[i]);
        constrained.on_datagram(at_us(static_cast<std::int64_t>(i)), corpus[i]);
    }
    EXPECT_EQ(constrained.counters().non_flow, corpus.size());
    EXPECT_EQ(constrained.counters().tracked, 0u);
    EXPECT_EQ(constrained.flow_count(), 0u);
    EXPECT_EQ(idealized.non_flow_packets(), corpus.size());
    EXPECT_EQ(idealized.flow_count(), 0u);
}

TEST(ConstrainedRobustness, LongHeaderOnlyCorpusIsNeverTracked) {
    std::vector<std::vector<std::uint8_t>> corpus;
    for (std::uint64_t i = 0; i < 64; ++i) {
        quic::PacketHeader header;
        header.type = i % 2 == 0 ? quic::PacketType::initial : quic::PacketType::handshake;
        header.dcid = quic::ConnectionId::from_u64(0x4000 + i);
        header.scid = quic::ConnectionId::from_u64(0x8000 + i);
        header.packet_number = i;
        std::vector<std::uint8_t> wire;
        const std::vector<std::uint8_t> payload{0x01};
        quic::encode_packet(wire, header, payload, quic::kInvalidPacketNumber);
        corpus.push_back(std::move(wire));
    }
    ConstrainedMonitor constrained{ConstrainedConfig{}};
    FlowMonitor idealized;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        idealized.on_datagram(at_us(static_cast<std::int64_t>(i)), corpus[i]);
        constrained.on_datagram(at_us(static_cast<std::int64_t>(i)), corpus[i]);
    }
    EXPECT_EQ(constrained.counters().tracked, 0u);
    EXPECT_EQ(constrained.counters().non_flow, corpus.size());
    EXPECT_EQ(idealized.flow_count(), 0u);
}

// --- config validation -------------------------------------------------------

TEST(ConstrainedConfigValidation, RejectsNonsensicalBudgets) {
    ConstrainedConfig config;
    config.log2_slots = 0;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
    config = ConstrainedConfig{};
    config.log2_slots = 25;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
    config = ConstrainedConfig{};
    config.sample_every = 0;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
    config = ConstrainedConfig{};
    config.ewma_shift = 16;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
    config = ConstrainedConfig{};
    config.dcid_length = 0;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
    config = ConstrainedConfig{};
    config.eviction = EvictionPolicy::lru;
    config.lru_idle_packets = 0;
    EXPECT_THROW(ConstrainedMonitor{config}, std::invalid_argument);
}

TEST(ConstrainedConfigValidation, DefaultsAreValid) {
    EXPECT_NO_THROW(ConstrainedConfig{}.validate());
    ConstrainedMonitor monitor{ConstrainedConfig{}};
    EXPECT_EQ(monitor.slot_count(), std::size_t{1} << 16);
    EXPECT_EQ(monitor.flow_count(), 0u);
}

}  // namespace
}  // namespace spinscope::core
