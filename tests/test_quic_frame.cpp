// Unit tests for the QUIC frame codec (RFC 9000 §19 subset).

#include <gtest/gtest.h>

#include <vector>

#include "quic/frame.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

constexpr std::uint8_t kExp = 3;  // default ack_delay_exponent

std::optional<std::vector<Frame>> round_trip(const Frame& frame) {
    std::vector<std::uint8_t> wire;
    encode_frame(wire, frame, kExp);
    return decode_frames(wire, kExp);
}

TEST(Frames, PingRoundTrip) {
    const auto decoded = round_trip(PingFrame{});
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), 1u);
    EXPECT_TRUE(std::holds_alternative<PingFrame>(decoded->front()));
}

TEST(Frames, PaddingRunsCollapse) {
    std::vector<std::uint8_t> wire(17, 0x00);
    const auto decoded = decode_frames(wire, kExp);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), 1u);
    const auto& pad = std::get<PaddingFrame>(decoded->front());
    EXPECT_EQ(pad.length, 17u);
}

TEST(Frames, PaddingEncodesAsZeros) {
    std::vector<std::uint8_t> wire;
    encode_frame(wire, PaddingFrame{5}, kExp);
    EXPECT_EQ(wire, std::vector<std::uint8_t>(5, 0x00));
}

TEST(Frames, AckSingleRangeRoundTrip) {
    AckFrame ack;
    ack.ranges.push_back(AckRange{3, 17});
    ack.ack_delay = Duration::micros(800);
    const auto decoded = round_trip(Frame{ack});
    ASSERT_TRUE(decoded.has_value());
    const auto& out = std::get<AckFrame>(decoded->front());
    ASSERT_EQ(out.ranges.size(), 1u);
    EXPECT_EQ(out.ranges[0].smallest, 3u);
    EXPECT_EQ(out.ranges[0].largest, 17u);
    EXPECT_EQ(out.largest_acked(), 17u);
    EXPECT_EQ(out.ack_delay, Duration::micros(800));
}

TEST(Frames, AckDelayQuantizedByExponent) {
    AckFrame ack;
    ack.ranges.push_back(AckRange{0, 0});
    ack.ack_delay = Duration::micros(1234);  // 1234 >> 3 = 154; 154 << 3 = 1232
    const auto decoded = round_trip(Frame{ack});
    const auto& out = std::get<AckFrame>(decoded->front());
    EXPECT_EQ(out.ack_delay, Duration::micros(1232));
}

TEST(Frames, AckMultiRangeRoundTrip) {
    AckFrame ack;
    ack.ranges.push_back(AckRange{20, 25});
    ack.ranges.push_back(AckRange{10, 15});
    ack.ranges.push_back(AckRange{0, 3});
    const auto decoded = round_trip(Frame{ack});
    ASSERT_TRUE(decoded.has_value());
    const auto& out = std::get<AckFrame>(decoded->front());
    ASSERT_EQ(out.ranges.size(), 3u);
    EXPECT_EQ(out.ranges[0].largest, 25u);
    EXPECT_EQ(out.ranges[0].smallest, 20u);
    EXPECT_EQ(out.ranges[1].largest, 15u);
    EXPECT_EQ(out.ranges[1].smallest, 10u);
    EXPECT_EQ(out.ranges[2].largest, 3u);
    EXPECT_EQ(out.ranges[2].smallest, 0u);
}

TEST(Frames, AckAcknowledgesMembership) {
    AckFrame ack;
    ack.ranges.push_back(AckRange{10, 15});
    ack.ranges.push_back(AckRange{0, 3});
    EXPECT_TRUE(ack.acknowledges(0));
    EXPECT_TRUE(ack.acknowledges(3));
    EXPECT_TRUE(ack.acknowledges(12));
    EXPECT_FALSE(ack.acknowledges(4));
    EXPECT_FALSE(ack.acknowledges(9));
    EXPECT_FALSE(ack.acknowledges(16));
}

TEST(Frames, CryptoRoundTrip) {
    CryptoFrame crypto;
    crypto.offset = 42;
    crypto.data = {0xde, 0xad, 0xbe, 0xef};
    const auto decoded = round_trip(Frame{crypto});
    const auto& out = std::get<CryptoFrame>(decoded->front());
    EXPECT_EQ(out.offset, 42u);
    EXPECT_EQ(out.data, crypto.data);
}

TEST(Frames, StreamRoundTripVariants) {
    for (const std::uint64_t offset : {std::uint64_t{0}, std::uint64_t{5000}}) {
        for (const bool fin : {false, true}) {
            StreamFrame stream;
            stream.stream_id = 4;
            stream.offset = offset;
            stream.fin = fin;
            stream.data = {1, 2, 3, 4, 5};
            const auto decoded = round_trip(Frame{stream});
            ASSERT_TRUE(decoded.has_value());
            const auto& out = std::get<StreamFrame>(decoded->front());
            EXPECT_EQ(out.stream_id, 4u);
            EXPECT_EQ(out.offset, offset);
            EXPECT_EQ(out.fin, fin);
            EXPECT_EQ(out.data, stream.data);
        }
    }
}

TEST(Frames, EmptyFinStreamRoundTrip) {
    StreamFrame stream;
    stream.stream_id = 0;
    stream.offset = 100;
    stream.fin = true;
    const auto decoded = round_trip(Frame{stream});
    const auto& out = std::get<StreamFrame>(decoded->front());
    EXPECT_TRUE(out.fin);
    EXPECT_TRUE(out.data.empty());
    EXPECT_EQ(out.offset, 100u);
}

TEST(Frames, MaxDataRoundTrip) {
    const auto decoded = round_trip(Frame{MaxDataFrame{123456}});
    const auto& out = std::get<MaxDataFrame>(decoded->front());
    EXPECT_EQ(out.maximum, 123456u);
}

TEST(Frames, ConnectionCloseRoundTrip) {
    for (const bool application : {false, true}) {
        ConnectionCloseFrame close;
        close.application = application;
        close.error_code = 7;
        close.reason = "done";
        const auto decoded = round_trip(Frame{close});
        const auto& out = std::get<ConnectionCloseFrame>(decoded->front());
        EXPECT_EQ(out.application, application);
        EXPECT_EQ(out.error_code, 7u);
        EXPECT_EQ(out.reason, "done");
    }
}

TEST(Frames, HandshakeDoneRoundTrip) {
    const auto decoded = round_trip(Frame{HandshakeDoneFrame{}});
    EXPECT_TRUE(std::holds_alternative<HandshakeDoneFrame>(decoded->front()));
}

TEST(Frames, MultipleFramesInOnePayload) {
    AckFrame ack;
    ack.ranges.push_back(AckRange{0, 5});
    StreamFrame stream;
    stream.stream_id = 0;
    stream.data = {9, 9};
    const std::vector<Frame> frames{Frame{ack}, Frame{MaxDataFrame{100}}, Frame{stream}};
    const auto wire = encode_frames(frames, kExp);
    const auto decoded = decode_frames(wire, kExp);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), 3u);
    EXPECT_TRUE(std::holds_alternative<AckFrame>((*decoded)[0]));
    EXPECT_TRUE(std::holds_alternative<MaxDataFrame>((*decoded)[1]));
    EXPECT_TRUE(std::holds_alternative<StreamFrame>((*decoded)[2]));
}

TEST(Frames, UnknownTypeRejected) {
    std::vector<std::uint8_t> wire;
    encode_varint(wire, 0x33);  // not implemented
    EXPECT_FALSE(decode_frames(wire, kExp).has_value());
}

TEST(Frames, TruncatedStreamRejected) {
    StreamFrame stream;
    stream.stream_id = 0;
    stream.data = {1, 2, 3, 4};
    std::vector<std::uint8_t> wire;
    encode_frame(wire, Frame{stream}, kExp);
    wire.pop_back();
    EXPECT_FALSE(decode_frames(wire, kExp).has_value());
}

TEST(Frames, MalformedAckRejected) {
    // first_range > largest is impossible.
    std::vector<std::uint8_t> wire;
    encode_varint(wire, 0x02);  // ACK
    encode_varint(wire, 5);     // largest
    encode_varint(wire, 0);     // delay
    encode_varint(wire, 0);     // range count
    encode_varint(wire, 9);     // first range length > largest
    EXPECT_FALSE(decode_frames(wire, kExp).has_value());
}

TEST(Frames, AckElicitingClassification) {
    EXPECT_TRUE(is_ack_eliciting(Frame{PingFrame{}}));
    EXPECT_TRUE(is_ack_eliciting(Frame{CryptoFrame{}}));
    EXPECT_TRUE(is_ack_eliciting(Frame{StreamFrame{}}));
    EXPECT_TRUE(is_ack_eliciting(Frame{MaxDataFrame{}}));
    EXPECT_TRUE(is_ack_eliciting(Frame{HandshakeDoneFrame{}}));
    EXPECT_FALSE(is_ack_eliciting(Frame{PaddingFrame{}}));
    EXPECT_FALSE(is_ack_eliciting(Frame{AckFrame{}}));
    EXPECT_FALSE(is_ack_eliciting(Frame{ConnectionCloseFrame{}}));

    const std::vector<Frame> ack_only{Frame{AckFrame{}}, Frame{PaddingFrame{}}};
    EXPECT_FALSE(any_ack_eliciting(ack_only));
    const std::vector<Frame> with_ping{Frame{AckFrame{}}, Frame{PingFrame{}}};
    EXPECT_TRUE(any_ack_eliciting(with_ping));
}

// Property sweep: ACK frames with random descending ranges round-trip.
class AckRangesProperty : public ::testing::TestWithParam<int> {};

TEST_P(AckRangesProperty, RandomRangesRoundTrip) {
    util::Rng rng{static_cast<std::uint64_t>(GetParam())};
    for (int iteration = 0; iteration < 200; ++iteration) {
        AckFrame ack;
        // Build descending ranges with gaps >= 2.
        std::uint64_t cursor = 1'000'000 + rng.uniform_u64(1'000'000);
        const int range_count = 1 + static_cast<int>(rng.uniform_u64(6));
        for (int i = 0; i < range_count && cursor > 100; ++i) {
            const std::uint64_t largest = cursor;
            const std::uint64_t length = rng.uniform_u64(20);
            const std::uint64_t smallest = largest - length;
            ack.ranges.push_back(AckRange{smallest, largest});
            cursor = smallest - 2 - rng.uniform_u64(50);
        }
        std::vector<std::uint8_t> wire;
        encode_frame(wire, Frame{ack}, kExp);
        const auto decoded = decode_frames(wire, kExp);
        ASSERT_TRUE(decoded.has_value());
        const auto& out = std::get<AckFrame>(decoded->front());
        ASSERT_EQ(out.ranges.size(), ack.ranges.size());
        for (std::size_t i = 0; i < out.ranges.size(); ++i) {
            EXPECT_EQ(out.ranges[i].largest, ack.ranges[i].largest);
            EXPECT_EQ(out.ranges[i].smallest, ack.ranges[i].smallest);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AckRangesProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace spinscope::quic
