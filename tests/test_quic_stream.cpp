// Unit tests for stream reassembly and the send queue.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "quic/stream.hpp"

namespace spinscope::quic {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) { return {list}; }

TEST(Reassembly, InOrderDelivery) {
    ReassemblyBuffer buffer;
    buffer.insert(0, bytes({1, 2, 3}));
    EXPECT_EQ(buffer.contiguous_length(), 3u);
    EXPECT_FALSE(buffer.complete());
    buffer.insert(3, bytes({4, 5}));
    buffer.set_final_size(5);
    ASSERT_TRUE(buffer.complete());
    EXPECT_EQ(buffer.take(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Reassembly, OutOfOrderChunks) {
    ReassemblyBuffer buffer;
    buffer.insert(3, bytes({4, 5}));
    EXPECT_EQ(buffer.contiguous_length(), 0u);
    buffer.insert(0, bytes({1, 2, 3}));
    EXPECT_EQ(buffer.contiguous_length(), 5u);
    buffer.set_final_size(5);
    EXPECT_TRUE(buffer.complete());
}

TEST(Reassembly, DuplicatesAndOverlapsAreIdempotent) {
    ReassemblyBuffer buffer;
    buffer.insert(0, bytes({1, 2, 3, 4}));
    buffer.insert(2, bytes({3, 4, 5, 6}));  // overlap extends
    buffer.insert(0, bytes({1, 2}));        // pure duplicate
    buffer.set_final_size(6);
    ASSERT_TRUE(buffer.complete());
    EXPECT_EQ(buffer.take(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST(Reassembly, HoleBlocksCompletion) {
    ReassemblyBuffer buffer;
    buffer.insert(0, bytes({1}));
    buffer.insert(2, bytes({3}));
    buffer.set_final_size(3);
    EXPECT_FALSE(buffer.complete());
    EXPECT_EQ(buffer.contiguous_length(), 1u);
    buffer.insert(1, bytes({2}));
    EXPECT_TRUE(buffer.complete());
}

TEST(Reassembly, FinWithEmptyStream) {
    ReassemblyBuffer buffer;
    buffer.set_final_size(0);
    EXPECT_TRUE(buffer.complete());
    EXPECT_TRUE(buffer.take().empty());
}

TEST(Reassembly, ManyTinyOutOfOrderChunks) {
    ReassemblyBuffer buffer;
    std::vector<std::uint8_t> expected(97);
    std::iota(expected.begin(), expected.end(), 0);
    // Insert even offsets first, then odd.
    for (std::size_t i = 0; i < expected.size(); i += 2) {
        buffer.insert(i, {&expected[i], 1});
    }
    for (std::size_t i = 1; i < expected.size(); i += 2) {
        buffer.insert(i, {&expected[i], 1});
    }
    buffer.set_final_size(expected.size());
    ASSERT_TRUE(buffer.complete());
    EXPECT_EQ(buffer.take(), expected);
}

TEST(SendQueue, ChunksRespectLimit) {
    SendQueue queue;
    std::vector<std::uint8_t> data(10);
    std::iota(data.begin(), data.end(), 0);
    queue.append(data, true);
    auto c1 = queue.next_chunk(4);
    ASSERT_TRUE(c1.has_value());
    EXPECT_EQ(c1->offset, 0u);
    EXPECT_EQ(c1->data.size(), 4u);
    EXPECT_FALSE(c1->fin);
    auto c2 = queue.next_chunk(4);
    EXPECT_EQ(c2->offset, 4u);
    auto c3 = queue.next_chunk(4);
    EXPECT_EQ(c3->data.size(), 2u);
    EXPECT_TRUE(c3->fin);
    EXPECT_FALSE(queue.has_pending());
    EXPECT_FALSE(queue.next_chunk(4).has_value());
}

TEST(SendQueue, FinOnlyChunk) {
    SendQueue queue;
    queue.append({}, true);
    EXPECT_TRUE(queue.has_pending());
    const auto chunk = queue.next_chunk(100);
    ASSERT_TRUE(chunk.has_value());
    EXPECT_TRUE(chunk->fin);
    EXPECT_TRUE(chunk->data.empty());
    EXPECT_FALSE(queue.has_pending());
}

TEST(SendQueue, AppendAcrossChunks) {
    SendQueue queue;
    queue.append(bytes({1, 2}), false);
    auto c1 = queue.next_chunk(10);
    EXPECT_EQ(c1->data.size(), 2u);
    EXPECT_FALSE(c1->fin);
    EXPECT_FALSE(queue.has_pending());
    queue.append(bytes({3}), true);
    EXPECT_TRUE(queue.has_pending());
    auto c2 = queue.next_chunk(10);
    EXPECT_EQ(c2->offset, 2u);
    EXPECT_TRUE(c2->fin);
}

TEST(SendQueue, RequeuePriority) {
    SendQueue queue;
    std::vector<std::uint8_t> data(8, 0xaa);
    queue.append(data, true);
    auto lost = queue.next_chunk(4);
    ASSERT_TRUE(lost.has_value());
    queue.requeue(*lost);
    EXPECT_TRUE(queue.has_pending());
    // Retransmission comes out before new data.
    const auto again = queue.next_chunk(100);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->offset, lost->offset);
    EXPECT_EQ(again->data, lost->data);
    // New data continues afterwards.
    const auto rest = queue.next_chunk(100);
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ(rest->offset, 4u);
    EXPECT_TRUE(rest->fin);
}

TEST(SendQueue, RequeueOfFinChunkKeepsPendingUntilResent) {
    SendQueue queue;
    queue.append(bytes({1}), true);
    auto chunk = queue.next_chunk(10);
    ASSERT_TRUE(chunk->fin);
    EXPECT_FALSE(queue.has_pending());
    queue.requeue(*chunk);
    EXPECT_TRUE(queue.has_pending());
    auto again = queue.next_chunk(10);
    EXPECT_TRUE(again->fin);
    EXPECT_FALSE(queue.has_pending());
}

}  // namespace
}  // namespace spinscope::quic
