// Unit tests for util sampling distributions.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace spinscope::util {
namespace {

TEST(Normal, MomentsApproximatelyCorrect) {
    Rng rng{1};
    RunningStats s;
    for (int i = 0; i < 40000; ++i) s.add(sample_normal(rng, 3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Lognormal, MedianIsExpMu) {
    Rng rng{2};
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i) values.push_back(sample_lognormal(rng, std::log(25.0), 0.8));
    EXPECT_NEAR(*quantile(values, 0.5), 25.0, 1.0);
    for (double v : values) ASSERT_GT(v, 0.0);
}

TEST(Exponential, MeanIsInverseRate) {
    Rng rng{3};
    RunningStats s;
    for (int i = 0; i < 40000; ++i) s.add(sample_exponential(rng, 0.25));
    EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Pareto, RespectsScaleFloor) {
    Rng rng{4};
    for (int i = 0; i < 5000; ++i) ASSERT_GE(sample_pareto(rng, 2.0, 1.5), 2.0);
}

TEST(Zipf, RequiresPositiveN) {
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Zipf, RankZeroMostPopular) {
    Rng rng{5};
    ZipfSampler zipf{100, 1.0};
    std::array<int, 100> counts{};
    for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[1], counts[50]);
    // Zipf s=1: rank 0 share ~ 1/H(100) ~ 0.192.
    EXPECT_NEAR(counts[0] / 50000.0, 0.192, 0.02);
}

TEST(Zipf, ZeroExponentIsUniform) {
    Rng rng{6};
    ZipfSampler zipf{10, 0.0};
    std::array<int, 10> counts{};
    for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
    for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(Discrete, RejectsInvalidWeights) {
    const std::vector<double> negative{1.0, -0.5};
    EXPECT_THROW(DiscreteSampler{std::span<const double>{negative}}, std::invalid_argument);
    const std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(DiscreteSampler{std::span<const double>{zeros}}, std::invalid_argument);
}

TEST(Discrete, MatchesWeights) {
    Rng rng{7};
    const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
    DiscreteSampler sampler{weights};
    std::array<int, 4> counts{};
    for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.01);
    EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.015);
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.015);
}

TEST(DelayMixture, EmptyYieldsZero) {
    Rng rng{8};
    DelayMixture mixture;
    EXPECT_TRUE(mixture.empty());
    EXPECT_EQ(mixture.sample(rng), Duration::zero());
}

TEST(DelayMixture, NeverNegative) {
    Rng rng{9};
    DelayMixture mixture{{
        DelayComponent{0.5, std::log(0.001), 2.0, -5.0},  // offset pulls negative
        DelayComponent{0.5, std::log(10.0), 0.5, 0.0},
    }};
    for (int i = 0; i < 5000; ++i) ASSERT_GE(mixture.sample(rng).count_nanos(), 0);
}

TEST(DelayMixture, SingleComponentMedian) {
    Rng rng{10};
    DelayMixture mixture{{DelayComponent{1.0, std::log(40.0), 0.6, 10.0}}};
    std::vector<double> values;
    for (int i = 0; i < 20001; ++i) values.push_back(mixture.sample(rng).as_ms());
    // Median of offset + lognormal = 10 + 40.
    EXPECT_NEAR(*quantile(values, 0.5), 50.0, 2.0);
}

TEST(DelayMixture, ComponentWeightsRespected) {
    Rng rng{11};
    // Two well-separated components; classify samples by a midpoint.
    DelayMixture mixture{{
        DelayComponent{0.25, std::log(1.0), 0.1, 0.0},
        DelayComponent{0.75, std::log(1000.0), 0.1, 0.0},
    }};
    int slow = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
        if (mixture.sample(rng).as_ms() > 100.0) ++slow;
    }
    EXPECT_NEAR(static_cast<double>(slow) / kTrials, 0.75, 0.02);
}

// Property sweep: lognormal quantiles scale with sigma.
class LognormalSigma : public ::testing::TestWithParam<double> {};

TEST_P(LognormalSigma, NinetiethPercentileMatchesTheory) {
    const double sigma = GetParam();
    Rng rng{static_cast<std::uint64_t>(sigma * 1000)};
    std::vector<double> values;
    for (int i = 0; i < 30001; ++i) values.push_back(sample_lognormal(rng, 0.0, sigma));
    const double p90_theory = std::exp(1.2815515655 * sigma);
    EXPECT_NEAR(*quantile(values, 0.9) / p90_theory, 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LognormalSigma, ::testing::Values(0.25, 0.5, 1.0, 1.5));

}  // namespace
}  // namespace spinscope::util
