// Disk-chaos suite (DESIGN.md §16): campaigns on a lying disk.
//
// The headline invariant under test: for every storage fault plan × injection
// point, a journaled campaign either completes with output byte-identical to
// the fault-free run (possibly with the journal degraded and a loud,
// attributed error in CampaignStats), or refuses loudly with an attributed
// error — and scrub + resume on a REAL disk then completes byte-identically.
// No silent corruption, ever.
//
// The default run sweeps a reduced fault matrix so the tier-1 ctest lane
// stays fast; scripts/ci.sh diskchaos sets SPINSCOPE_DISKCHAOS_FULL=1 for
// the full fault-plan × injection-point × threads × procs sweep.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "faults/storage.hpp"
#include "golden.hpp"
#include "scanner/campaign.hpp"
#include "scanner/journal.hpp"
#include "scanner/procpool.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/io.hpp"
#include "web/population.hpp"

namespace spinscope::scanner {
namespace {

using spinscope::testing::render_scan_stream;

// ~110 domains at seed 1 — 7 chunks at chunk_domains=16; small segments make
// every fault ordinal land inside the journal's busy write window.
web::Population tiny_population() { return web::Population{{2'000'000.0, 1}}; }

bool full_sweep() { return std::getenv("SPINSCOPE_DISKCHAOS_FULL") != nullptr; }

class DiskChaosTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_diskchaos_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

struct SweepResult {
    std::string stream;
    CampaignStats stats;
    std::string telemetry;  ///< telemetry::deterministic_csv
};

/// One campaign pass. `io` may be null (real disk); `resume` replays the
/// journal first.
SweepResult run_campaign(const web::Population& population, ScanOptions options,
                         util::Io* io, bool resume) {
    options.io = io;
    Campaign campaign{population, options};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    SweepResult result;
    const auto sink = [&](const web::Domain&, DomainScan&& scan) {
        result.stream += render_scan_stream(scan);
    };
    result.stats = resume ? campaign.resume(sink) : campaign.run(sink);
    result.telemetry = telemetry::deterministic_csv(registry);
    return result;
}

/// What a faulted campaign did: completed (maybe degraded) or threw.
struct FaultOutcome {
    bool threw = false;
    std::string error;
    SweepResult result;
};

FaultOutcome run_faulted(const web::Population& population, const ScanOptions& options,
                         const faults::StorageFaultPlan& plan) {
    faults::FaultIo io{util::Io::real(), plan};
    FaultOutcome outcome;
    try {
        outcome.result = run_campaign(population, options, &io, /*resume=*/false);
    } catch (const std::exception& e) {
        outcome.threw = true;
        outcome.error = e.what();
    }
    return outcome;
}

/// Asserts the headline invariant for one (plan, options) cell and returns
/// what happened ('c' completed clean, 'd' completed degraded, 't' threw).
char expect_no_silent_corruption(const web::Population& population,
                                 const ScanOptions& options,
                                 const faults::StorageFaultPlan& plan,
                                 const SweepResult& baseline,
                                 const std::string& label) {
    const FaultOutcome outcome = run_faulted(population, options, plan);
    if (!outcome.threw) {
        // Completed: the OUTPUT must be byte-identical no matter what the
        // disk did — the journal may only have degraded, loudly.
        EXPECT_EQ(outcome.result.stream, baseline.stream) << label;
        EXPECT_EQ(outcome.result.telemetry, baseline.telemetry) << label;
        if (outcome.result.stats.journal_degraded) {
            EXPECT_FALSE(outcome.result.stats.journal_degraded_error.empty())
                << label << ": degraded without an attributed error";
            return 'd';
        }
        return 'c';
    }
    // Refused: the error must be attributed (never a bare what()), and
    // scrub + resume on the real disk must complete byte-identically.
    EXPECT_FALSE(outcome.error.empty()) << label;
    const ScrubReport scrubbed = scrub_journal(options.journal_dir);
    (void)scrubbed;  // any classification is fine; resume is the proof
    const SweepResult resumed =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream) << label << " (post-scrub resume)";
    EXPECT_EQ(resumed.telemetry, baseline.telemetry) << label << " (post-scrub resume)";
    return 't';
}

// --- The fault-plan × injection-point sweep ----------------------------------

TEST_F(DiskChaosTest, EveryFaultPlanCompletesIdenticallyOrRefusesLoudly) {
    const web::Population population = tiny_population();
    ScanOptions base;
    base.journal_segment_bytes = 1024;  // several segments → seals mid-run
    base.journal_retry.initial_backoff = util::Duration::millis(1);
    base.journal_retry.max_backoff = util::Duration::millis(2);
    const SweepResult baseline =
        run_campaign(population, base, /*io=*/nullptr, /*resume=*/false);
    ASSERT_GT(baseline.stream.size(), 0u);

    struct Cell {
        const char* kind;
        std::uint64_t n;
    };
    std::vector<Cell> cells = {
        {"fail_write", 1},  {"fail_write", 3},  {"short_write", 2},
        {"enospc", 2000},   {"fail_fsync", 1},  {"power_loss", 4},
    };
    if (full_sweep()) {
        for (const std::uint64_t n : {2ull, 4ull, 5ull, 6ull, 8ull}) {
            cells.push_back({"fail_write", n});
            cells.push_back({"power_loss", n});
        }
        cells.push_back({"short_write", 1});
        cells.push_back({"short_write", 4});
        cells.push_back({"enospc", 500});
        cells.push_back({"enospc", 6000});
        cells.push_back({"fail_fsync", 2});
        cells.push_back({"fail_fsync", 3});
    }
    const std::vector<unsigned> threads =
        full_sweep() ? std::vector<unsigned>{1, 2, 8} : std::vector<unsigned>{1, 2};

    std::string outcomes;
    for (const unsigned t : threads) {
        for (const Cell& cell : cells) {
            faults::StorageFaultPlan plan;
            if (std::string{cell.kind} == "fail_write") {
                plan.fail_write_at = cell.n;
                plan.write_error = ENOSPC;
            } else if (std::string{cell.kind} == "short_write") {
                plan.short_write_at = cell.n;
            } else if (std::string{cell.kind} == "enospc") {
                plan.enospc_after_bytes = cell.n;
            } else if (std::string{cell.kind} == "fail_fsync") {
                plan.fail_fsync_at = cell.n;
            } else {
                plan.power_loss_at_write = cell.n;
            }
            ScanOptions options = base;
            options.threads = t;
            options.journal_dir =
                (dir_ / (std::string{cell.kind} + "_" + std::to_string(cell.n) +
                         "_t" + std::to_string(t)))
                    .string();
            const std::string label = std::string{cell.kind} + "@" +
                                      std::to_string(cell.n) + " threads=" +
                                      std::to_string(t);
            outcomes += expect_no_silent_corruption(population, options, plan,
                                                    baseline, label);
        }
    }
    // The sweep must actually provoke a degrade somewhere; a matrix whose
    // every cell completes cleanly is too tame to mean anything.
    EXPECT_NE(outcomes.find('d'), std::string::npos)
        << "no plan degraded (outcomes: " << outcomes << ")";
    EXPECT_EQ(outcomes.size(), cells.size() * threads.size());
}

TEST_F(DiskChaosTest, DegradedCampaignIsLoudAndItsJournalPrefixIsUsable) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "degraded").string();
    options.journal_segment_bytes = 1024;
    options.journal_retry.initial_backoff = util::Duration::millis(1);
    options.journal_retry.max_backoff = util::Duration::millis(2);
    const SweepResult baseline =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/false);
    std::filesystem::remove_all(options.journal_dir);

    // The disk fills after ~3 KB: a few records land, then every append
    // fails with ENOSPC (fatal, not transient) and the campaign degrades.
    faults::StorageFaultPlan plan;
    plan.enospc_after_bytes = 3000;
    faults::FaultIo io{util::Io::real(), plan};
    Campaign campaign{population, [&] {
        ScanOptions faulted = options;
        faulted.io = &io;
        return faulted;
    }()};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    std::string stream;
    const CampaignStats stats =
        campaign.run([&](const web::Domain&, DomainScan&& scan) {
            stream += render_scan_stream(scan);
        });

    // Degraded, loud, attributed — and the OUTPUT is still byte-identical.
    EXPECT_TRUE(stats.journal_degraded);
    EXPECT_NE(stats.journal_degraded_error.find("No space left"), std::string::npos)
        << stats.journal_degraded_error;
    EXPECT_EQ(stream, baseline.stream);
    const auto* degraded = registry.find_counter("campaign.journal.degraded");
    ASSERT_NE(degraded, nullptr);
    EXPECT_EQ(degraded->value(), 1u);
    EXPECT_NE(registry.find_counter("campaign.journal.io_errors.fatal"), nullptr);

    // The sealed prefix the degrade left behind is an ordinary valid journal:
    // scrub finds it intact-or-torn (never corrupt), resume completes.
    const ScrubReport report = scrub_journal(options.journal_dir);
    for (const ScrubFinding& finding : report.findings) {
        EXPECT_NE(finding.damage, ScrubDamage::mid_segment_corruption)
            << "degrade published a corrupt record";
        EXPECT_NE(finding.damage, ScrubDamage::header_corrupt);
    }
    const SweepResult resumed =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
}

TEST_F(DiskChaosTest, BitFlipAfterSealIsCaughtByScrubAndResumeIsIdentical) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "flip").string();
    options.journal_segment_bytes = 1024;
    const SweepResult baseline =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/false);
    std::filesystem::remove_all(options.journal_dir);

    // The first seal's rename flips one bit in the sealed segment. The
    // campaign itself cannot notice (the syscall succeeded) — this is the
    // silent-corruption case that scrub exists to catch.
    faults::StorageFaultPlan plan;
    plan.flip_bit_at_rename = 1;
    const FaultOutcome outcome = run_faulted(population, options, plan);
    ASSERT_FALSE(outcome.threw) << outcome.error;
    EXPECT_EQ(outcome.result.stream, baseline.stream);

    const ScrubReport report = scrub_journal(options.journal_dir);
    ASSERT_FALSE(report.clean()) << "scrub missed the flipped bit";
    EXPECT_TRUE(report.findings[0].damage == ScrubDamage::mid_segment_corruption ||
                report.findings[0].damage == ScrubDamage::header_corrupt ||
                report.findings[0].damage == ScrubDamage::torn_tail)
        << to_cstring(report.findings[0].damage);

    const SweepResult resumed =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/true);
    EXPECT_EQ(resumed.stream, baseline.stream);
    EXPECT_EQ(resumed.telemetry, baseline.telemetry);
}

TEST_F(DiskChaosTest, TransientWriteErrorsAreRetriedInvisibly) {
    // EINTR is transient: the journal retries and the campaign neither
    // degrades nor throws — and the journal replays completely afterwards.
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "transient").string();
    options.journal_retry.initial_backoff = util::Duration::millis(1);
    options.journal_retry.max_backoff = util::Duration::millis(2);
    const SweepResult baseline =
        run_campaign(population, options, /*io=*/nullptr, /*resume=*/false);
    std::filesystem::remove_all(options.journal_dir);

    faults::StorageFaultPlan plan;
    plan.fail_write_at = 3;
    plan.write_error = EINTR;
    const FaultOutcome outcome = run_faulted(population, options, plan);
    ASSERT_FALSE(outcome.threw) << outcome.error;
    EXPECT_FALSE(outcome.result.stats.journal_degraded)
        << outcome.result.stats.journal_degraded_error;
    EXPECT_EQ(outcome.result.stream, baseline.stream);

    const ReplayResult replay = replay_journal(options.journal_dir);
    EXPECT_TRUE(replay.has_header);
    EXPECT_EQ(replay.torn_bytes_discarded, 0u);
    const std::size_t chunk_count =
        (outcome.result.stats.domains_scanned + options.chunk_domains - 1) /
        options.chunk_domains;
    EXPECT_EQ(replay.chunks.size(), chunk_count) << "a record was silently dropped";
}

// --- Multi-process: FaultIo under --procs ------------------------------------

#ifndef _WIN32

TEST_F(DiskChaosTest, ProcsOnAFullDiskRefuseLoudlyAndRecoverAfterScrub) {
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "procs_enospc").string();
    const SweepResult baseline =
        run_campaign(population, [&] {
            ScanOptions plain = options;
            plain.journal_dir.clear();
            return plain;
        }(), /*io=*/nullptr, /*resume=*/false);

    for (const unsigned procs : full_sweep() ? std::vector<unsigned>{1, 2}
                                             : std::vector<unsigned>{2}) {
        const auto journal =
            dir_ / ("procs_enospc_" + std::to_string(procs));
        ScanOptions faulted = options;
        faulted.journal_dir = journal.string();
        faults::StorageFaultPlan plan;
        plan.enospc_after_bytes = 600;  // room for the header, little else
        faults::FaultIo io{util::Io::real(), plan};
        faulted.io = &io;

        Campaign campaign{population, faulted};
        telemetry::MetricsRegistry faulted_registry;
        campaign.set_metrics(&faulted_registry);
        ProcPoolOptions pool;
        pool.procs = procs;
        pool.heartbeat_interval = util::Duration::millis(2);
        pool.proc_restart.initial_backoff = util::Duration::millis(1);
        pool.proc_restart.max_backoff = util::Duration::millis(2);
        pool.chunk_attempts = 100;  // publish failures must not quarantine
        bool threw = false;
        std::string error;
        try {
            (void)run_procs(campaign, pool);
        } catch (const std::exception& e) {
            threw = true;
            error = e.what();
        }
        // Workers exit 3 on failed publishes, restarts burn out, and the
        // supervisor's inline completion hits the same full disk: the pass
        // must refuse with the storage cause attributed — never report a
        // complete map journal it does not have.
        ASSERT_TRUE(threw) << "procs=" << procs;
        EXPECT_NE(error.find("No space left"), std::string::npos) << error;

        // Recovery on a real disk: scrub, then continue the SAME map journal
        // (fresh=false) and reduce — byte-identical to the fault-free run.
        (void)scrub_journal(journal);
        ScanOptions healthy = options;
        healthy.journal_dir = journal.string();
        Campaign retry{population, healthy};
        telemetry::MetricsRegistry registry;
        retry.set_metrics(&registry);
        ProcPoolOptions resume_pool = pool;
        resume_pool.fresh = false;
        const ProcPoolReport report = run_procs(retry, resume_pool);
        EXPECT_EQ(report.chunks_recorded, report.chunks_total);
        std::string stream;
        (void)retry.reduce([&](const web::Domain&, DomainScan&& scan) {
            stream += render_scan_stream(scan);
        });
        EXPECT_EQ(stream, baseline.stream) << "procs=" << procs;
        EXPECT_EQ(telemetry::deterministic_csv(registry), baseline.telemetry)
            << "procs=" << procs;
    }
}

TEST_F(DiskChaosTest, ProcsAbsorbAOneShotPublishFaultAndStayByteIdentical) {
    // One write fails with a retryable-looking EIO in each forked worker's
    // private fault state; the worker dies with the publish-failed exit code
    // and its replacement (fresh incarnation, fresh ordinal count... but the
    // fault already fired in the parent's copied state only when reached)
    // finishes the pass. The supervisor must report the absorbed io errors.
    const web::Population population = tiny_population();
    ScanOptions options;
    options.journal_dir = (dir_ / "procs_oneshot").string();
    const SweepResult baseline =
        run_campaign(population, [&] {
            ScanOptions plain = options;
            plain.journal_dir.clear();
            return plain;
        }(), /*io=*/nullptr, /*resume=*/false);

    faults::StorageFaultPlan plan;
    plan.fail_write_at = 4;  // lands on an early lease bump or publish
    plan.write_error = EIO;
    faults::FaultIo io{util::Io::real(), plan};
    ScanOptions faulted = options;
    faulted.io = &io;
    Campaign campaign{population, faulted};
    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);
    ProcPoolOptions pool;
    pool.procs = 2;
    pool.heartbeat_interval = util::Duration::millis(2);
    pool.proc_restart.initial_backoff = util::Duration::millis(1);
    pool.proc_restart.max_backoff = util::Duration::millis(2);
    pool.proc_restart.max_attempts = 5;
    pool.chunk_attempts = 100;

    bool threw = false;
    std::string error;
    ProcPoolReport report;
    try {
        report = run_procs(campaign, pool);
    } catch (const std::exception& e) {
        threw = true;
        error = e.what();
    }
    if (threw) {
        // Allowed outcome: loud, attributed refusal + real-disk recovery.
        EXPECT_FALSE(error.empty());
        ScanOptions healthy = options;
        Campaign retry{population, healthy};
        ProcPoolOptions resume_pool = pool;
        resume_pool.fresh = false;
        (void)run_procs(retry, resume_pool);
        std::string stream;
        (void)retry.reduce([&](const web::Domain&, DomainScan&& scan) {
            stream += render_scan_stream(scan);
        });
        EXPECT_EQ(stream, baseline.stream);
        return;
    }
    // Completed: the map pass is full and the reduce is byte-identical.
    EXPECT_EQ(report.chunks_recorded, report.chunks_total);
    std::string stream;
    (void)campaign.reduce([&](const web::Domain&, DomainScan&& scan) {
        stream += render_scan_stream(scan);
    });
    EXPECT_EQ(stream, baseline.stream);
    EXPECT_EQ(telemetry::deterministic_csv(registry), baseline.telemetry);
}

#endif  // !_WIN32

}  // namespace
}  // namespace spinscope::scanner
