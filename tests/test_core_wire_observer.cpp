// Unit tests for the on-path wire observer (middlebox view).

#include <gtest/gtest.h>

#include "core/wire_observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/packet.hpp"

namespace spinscope::core {
namespace {

using util::Duration;
using util::TimePoint;

netsim::Datagram short_packet(bool spin, quic::PacketNumber pn) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(0x42);
    header.packet_number = pn;
    header.spin = spin;
    netsim::Datagram wire;
    quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
    return wire;
}

netsim::Datagram long_packet() {
    quic::PacketHeader header;
    header.type = quic::PacketType::initial;
    header.dcid = quic::ConnectionId::from_u64(1);
    header.scid = quic::ConnectionId::from_u64(2);
    netsim::Datagram wire;
    const std::vector<std::uint8_t> payload{0x01};
    quic::encode_packet(wire, header, payload, quic::kInvalidPacketNumber);
    return wire;
}

TimePoint at_ms(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

TEST(WireObserver, CountsPacketCategories) {
    WireSpinTap tap;
    tap.on_datagram(at_ms(0), long_packet());
    tap.on_datagram(at_ms(1), short_packet(false, 0));
    tap.on_datagram(at_ms(2), short_packet(false, 1));
    tap.on_datagram(at_ms(3), spinscope::bytes::ConstByteSpan{});  // empty datagram
    EXPECT_EQ(tap.short_header_packets(), 2u);
    EXPECT_EQ(tap.other_packets(), 2u);
}

TEST(WireObserver, MeasuresSpinPeriodFromRawDatagrams) {
    WireSpinTap tap;
    bool value = false;
    for (int i = 0; i < 8; ++i) {
        tap.on_datagram(at_ms(i * 30), short_packet(value, static_cast<unsigned>(i)));
        value = !value;
    }
    ASSERT_EQ(tap.result().samples_ms.size(), 6u);
    for (const double s : tap.result().samples_ms) EXPECT_DOUBLE_EQ(s, 30.0);
}

TEST(WireObserver, HeuristicsApplyButPnFilterForcedOff) {
    ObserverConfig config;
    config.packet_number_filter = true;  // impossible on the wire
    config.min_plausible_rtt = Duration::millis(5);
    WireSpinTap tap{config};
    tap.on_datagram(at_ms(0), short_packet(false, 0));
    tap.on_datagram(at_ms(30), short_packet(true, 1));
    tap.on_datagram(at_ms(31), short_packet(false, 2));  // 1 ms: rejected
    tap.on_datagram(at_ms(60), short_packet(true, 3));
    EXPECT_EQ(tap.rejected_samples(), 1u);
    EXPECT_EQ(tap.result().edge_count, 3u);
}

TEST(WireObserver, AttachesToLinkAsTap) {
    netsim::Simulator sim;
    netsim::LinkConfig config;
    config.base_delay = Duration::millis(2);
    netsim::Link link{sim, config, util::Rng{1}};
    WireSpinTap tap;
    link.add_tap(tap.tap());
    link.set_receiver([](spinscope::bytes::ConstByteSpan) {});
    link.send(short_packet(false, 0));
    sim.run_until(TimePoint::origin() + Duration::millis(20));
    link.send(short_packet(true, 1));
    sim.run();
    EXPECT_EQ(tap.short_header_packets(), 2u);
    EXPECT_EQ(tap.result().edge_count, 1u);
}

}  // namespace
}  // namespace spinscope::core
