// Tests for the on-disk qlog dataset store (the Appendix B artifact path).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "qlog/store.hpp"

namespace spinscope::qlog {
namespace {

class StoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spinscope_store_test_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    static Trace sample_trace(std::uint32_t n) {
        Trace trace;
        trace.host = "www.d" + std::to_string(n) + ".com";
        trace.ip = "10.0.0." + std::to_string(n % 250);
        trace.outcome = n % 3 == 0 ? ConnectionOutcome::handshake_timeout
                                   : ConnectionOutcome::ok;
        trace.record_received({TimePoint::from_nanos(n * 1000), quic::PacketType::one_rtt, n,
                               n % 2 == 0, 1200, true, 0});
        trace.metrics.rtt_samples_ms = {static_cast<double>(n) + 0.5};
        return trace;
    }

    std::filesystem::path dir_;
};

TEST_F(StoreTest, ContextLineRoundTrip) {
    const ScanContext context{12345, 57, true, 7};
    const auto parsed = parse_context_line(context_line(context));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->domain_id, 12345u);
    EXPECT_EQ(parsed->week, 57);
    EXPECT_TRUE(parsed->ipv6);
    EXPECT_EQ(parsed->org, 7u);
}

TEST_F(StoreTest, ContextLineRejectsGarbage) {
    EXPECT_FALSE(parse_context_line("").has_value());
    EXPECT_FALSE(parse_context_line("{\"ev\":\"sent\"}").has_value());
    EXPECT_FALSE(parse_context_line("{\"scan\":1,broken").has_value());
}

TEST_F(StoreTest, WriteReadRoundTrip) {
    {
        TraceStoreWriter writer{dir_};
        for (std::uint32_t i = 0; i < 25; ++i) {
            writer.append({i, static_cast<int>(i % 5), i % 2 == 0,
                           static_cast<std::uint16_t>(i % 3)},
                          sample_trace(i));
        }
        EXPECT_EQ(writer.traces_written(), 25u);
    }
    TraceStoreReader reader{dir_};
    std::uint32_t next = 0;
    const auto visited = reader.for_each([&](const ScanContext& c, const Trace& t) {
        EXPECT_EQ(c.domain_id, next);
        EXPECT_EQ(c.week, static_cast<int>(next % 5));
        EXPECT_EQ(c.ipv6, next % 2 == 0);
        EXPECT_EQ(t.host, "www.d" + std::to_string(next) + ".com");
        ASSERT_EQ(t.metrics.rtt_samples_ms.size(), 1u);
        EXPECT_DOUBLE_EQ(t.metrics.rtt_samples_ms[0], next + 0.5);
        ++next;
    });
    EXPECT_EQ(visited, 25u);
    EXPECT_EQ(reader.malformed_records(), 0u);
}

TEST_F(StoreTest, ShardsRollBySize) {
    {
        TraceStoreWriter writer{dir_, /*shard_bytes=*/2000};
        for (std::uint32_t i = 0; i < 40; ++i) writer.append({i, 0, false, 0}, sample_trace(i));
        EXPECT_GT(writer.shards_written(), 3u);
    }
    TraceStoreReader reader{dir_};
    EXPECT_GT(reader.shards().size(), 3u);
    std::uint64_t count = 0;
    reader.for_each([&](const ScanContext&, const Trace&) { ++count; });
    EXPECT_EQ(count, 40u);
}

TEST_F(StoreTest, EmptyDirectoryReadsNothing) {
    TraceStoreReader reader{dir_ / "does_not_exist"};
    EXPECT_TRUE(reader.shards().empty());
    EXPECT_EQ(reader.for_each([](const ScanContext&, const Trace&) { FAIL(); }), 0u);
}

TEST_F(StoreTest, CorruptRecordsAreSkippedNotFatal) {
    {
        TraceStoreWriter writer{dir_};
        writer.append({1, 0, false, 0}, sample_trace(1));
        writer.append({2, 0, false, 0}, sample_trace(2));
    }
    // Append garbage + a truncated record to the shard.
    {
        TraceStoreReader probe{dir_};
        ASSERT_FALSE(probe.shards().empty());
        std::ofstream out{probe.shards().front(), std::ios::app};
        out << "total garbage line\n";
        out << context_line({3, 0, false, 0});
        out << "{\"qlog\":\"spinscope\",\"host\":\"www.trunc\"";  // truncated, no metrics
    }
    TraceStoreReader reader{dir_};
    std::uint64_t count = 0;
    reader.for_each([&](const ScanContext&, const Trace&) { ++count; });
    EXPECT_EQ(count, 2u);
    EXPECT_GE(reader.malformed_records(), 1u);
}

TEST_F(StoreTest, ReopenAppendsNewShardGeneration) {
    {
        TraceStoreWriter writer{dir_};
        writer.append({1, 0, false, 0}, sample_trace(1));
    }
    {
        // A second writer starts over at shard 0 (overwrite semantics for a
        // fresh campaign into the same directory).
        TraceStoreWriter writer{dir_};
        writer.append({9, 1, true, 2}, sample_trace(9));
    }
    TraceStoreReader reader{dir_};
    std::vector<std::uint32_t> ids;
    reader.for_each([&](const ScanContext& c, const Trace&) { ids.push_back(c.domain_id); });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 9u);
}

}  // namespace
}  // namespace spinscope::qlog
