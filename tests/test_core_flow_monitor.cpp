// Tests for the multi-flow passive spin monitor (DCID demultiplexing).

#include <gtest/gtest.h>

#include "core/flow_monitor.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "quic/packet.hpp"

namespace spinscope::core {
namespace {

using util::Duration;
using util::TimePoint;

netsim::Datagram short_packet(std::uint64_t cid, bool spin, quic::PacketNumber pn) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(cid);
    header.packet_number = pn;
    header.spin = spin;
    netsim::Datagram wire;
    quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
    return wire;
}

TimePoint at_ms(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

TEST(FlowMonitor, DcidHexRendering) {
    const std::vector<std::uint8_t> dcid{0x01, 0xab, 0xff};
    EXPECT_EQ(dcid_hex(dcid), "01abff");
    EXPECT_EQ(dcid_hex({}), "");
}

TEST(FlowMonitor, DemuxesInterleavedFlows) {
    FlowMonitor monitor;
    // Two flows with different spin periods, packets interleaved.
    bool value_a = false;
    bool value_b = false;
    quic::PacketNumber pn_a = 0;
    quic::PacketNumber pn_b = 0;
    for (int t = 0; t < 240; t += 10) {
        if (t % 30 == 0) value_a = !value_a;   // flow A: 30 ms period
        if (t % 60 == 0) value_b = !value_b;   // flow B: 60 ms period
        monitor.on_datagram(at_ms(t), short_packet(0xaaaa, value_a, pn_a++));
        monitor.on_datagram(at_ms(t), short_packet(0xbbbb, value_b, pn_b++));
    }
    EXPECT_EQ(monitor.flow_count(), 2u);

    const auto flow_a = monitor.find("000000000000aaaa");
    const auto flow_b = monitor.find("000000000000bbbb");
    ASSERT_TRUE(flow_a.has_value());
    ASSERT_TRUE(flow_b.has_value());
    ASSERT_TRUE(flow_a->spin.has_samples());
    ASSERT_TRUE(flow_b->spin.has_samples());
    EXPECT_NEAR(flow_a->spin.mean_ms(), 30.0, 0.5);
    EXPECT_NEAR(flow_b->spin.mean_ms(), 60.0, 0.5);
    EXPECT_EQ(flow_a->packets, 24u);
}

TEST(FlowMonitor, IgnoresLongHeadersAndShortDatagrams) {
    FlowMonitor monitor;
    quic::PacketHeader initial;
    initial.type = quic::PacketType::initial;
    initial.dcid = quic::ConnectionId::from_u64(1);
    initial.scid = quic::ConnectionId::from_u64(2);
    netsim::Datagram long_wire;
    const std::vector<std::uint8_t> payload{0x01};
    quic::encode_packet(long_wire, initial, payload, quic::kInvalidPacketNumber);
    monitor.on_datagram(at_ms(0), long_wire);
    monitor.on_datagram(at_ms(1), std::vector<std::uint8_t>{0x40, 0x01});  // too short for an 8-byte DCID
    monitor.on_datagram(at_ms(2), spinscope::bytes::ConstByteSpan{});
    EXPECT_EQ(monitor.flow_count(), 0u);
    EXPECT_EQ(monitor.non_flow_packets(), 3u);
}

TEST(FlowMonitor, FindUnknownFlow) {
    FlowMonitor monitor;
    EXPECT_FALSE(monitor.find("deadbeef00000000").has_value());
}

TEST(FlowMonitor, HeuristicsApplyPerFlow) {
    ObserverConfig config;
    config.min_plausible_rtt = Duration::millis(5);
    FlowMonitor monitor{config};
    monitor.on_datagram(at_ms(0), short_packet(0x1, false, 0));
    monitor.on_datagram(at_ms(40), short_packet(0x1, true, 1));
    monitor.on_datagram(at_ms(41), short_packet(0x1, false, 2));  // 1 ms -> rejected
    monitor.on_datagram(at_ms(80), short_packet(0x1, true, 3));
    const auto flow = monitor.find("0000000000000001");
    ASSERT_TRUE(flow.has_value());
    EXPECT_EQ(flow->rejected_samples, 1u);
}

TEST(FlowMonitor, TracksRealConnectionsThroughSharedTap) {
    // Two concurrent QUIC connections through one monitored link.
    netsim::Simulator sim;
    util::Rng rng{11};
    FlowMonitor monitor;

    struct Run {
        std::unique_ptr<netsim::Path> path;
        std::unique_ptr<quic::Connection> client;
        std::unique_ptr<quic::Connection> server;
    };
    std::vector<Run> runs;
    for (int i = 0; i < 2; ++i) {
        Run run;
        netsim::LinkConfig link;
        link.base_delay = Duration::millis(10 + i * 25);
        run.path = std::make_unique<netsim::Path>(sim, link, link, rng);
        run.path->return_link().add_tap(monitor.tap());
        quic::ConnectionConfig ccfg;
        ccfg.role = quic::Role::client;
        ccfg.spin = {quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
        run.client = std::make_unique<quic::Connection>(
            sim, ccfg, rng.fork(static_cast<std::uint64_t>(i) * 2 + 1),
            [path = run.path.get()](netsim::Datagram dg) {
                path->forward_link().send(std::move(dg));
            });
        quic::ConnectionConfig scfg;
        scfg.role = quic::Role::server;
        scfg.spin = {quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
        run.server = std::make_unique<quic::Connection>(
            sim, scfg, rng.fork(static_cast<std::uint64_t>(i) * 2 + 2),
            [path = run.path.get()](netsim::Datagram dg) {
                path->return_link().send(std::move(dg));
            });
        run.path->forward_link().set_receiver(
            [server = run.server.get()](spinscope::bytes::ConstByteSpan dg) {
                server->on_datagram(dg);
            });
        run.path->return_link().set_receiver(
            [client = run.client.get()](spinscope::bytes::ConstByteSpan dg) {
                client->on_datagram(dg);
            });
        run.server->on_stream_complete = [server = run.server.get()](
                                             std::uint64_t, std::vector<std::uint8_t>) {
            server->send_stream(0, std::vector<std::uint8_t>(60'000, 1), true);
        };
        run.client->on_handshake_complete = [client = run.client.get()] {
            client->send_stream(0, std::vector<std::uint8_t>(100, 2), true);
        };
        run.client->connect();
        runs.push_back(std::move(run));
    }
    sim.run_until(TimePoint::origin() + Duration::seconds(10));

    // The monitor demuxed (at least) the two 1-RTT flows and measured
    // plausible RTTs for both.
    EXPECT_GE(monitor.flow_count(), 2u);
    int measured = 0;
    for (const auto& [key, stats] : monitor.flows()) {
        if (!stats.spin.has_samples()) continue;
        ++measured;
        EXPECT_GT(stats.spin.min_ms(), 15.0);
        EXPECT_LT(stats.spin.mean_ms(), 200.0);
    }
    EXPECT_GE(measured, 2);
}

}  // namespace
}  // namespace spinscope::core
