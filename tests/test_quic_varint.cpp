// Unit tests for the RFC 9000 §16 varint codec and the Reader/Writer
// helpers, including the RFC's worked examples (Appendix A.1).

#include <gtest/gtest.h>

#include <vector>

#include "quic/varint.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

TEST(Varint, SizeSelection) {
    EXPECT_EQ(varint_size(0), 1u);
    EXPECT_EQ(varint_size(63), 1u);
    EXPECT_EQ(varint_size(64), 2u);
    EXPECT_EQ(varint_size(16383), 2u);
    EXPECT_EQ(varint_size(16384), 4u);
    EXPECT_EQ(varint_size((1ULL << 30) - 1), 4u);
    EXPECT_EQ(varint_size(1ULL << 30), 8u);
    EXPECT_EQ(varint_size(kVarintMax), 8u);
}

TEST(Varint, Rfc9000Examples) {
    // RFC 9000 A.1: the four canonical encodings.
    struct Example {
        std::uint64_t value;
        std::vector<std::uint8_t> wire;
    };
    const Example examples[] = {
        {37, {0x25}},
        {15293, {0x7b, 0xbd}},
        {494878333, {0x9d, 0x7f, 0x3e, 0x7d}},
        {151288809941952652ULL, {0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
    };
    for (const auto& ex : examples) {
        std::vector<std::uint8_t> out;
        encode_varint(out, ex.value);
        EXPECT_EQ(out, ex.wire);
        const auto decoded = decode_varint(ex.wire);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->value, ex.value);
        EXPECT_EQ(decoded->consumed, ex.wire.size());
    }
}

TEST(Varint, TwoByteEncodingOfSmallValue) {
    // RFC 9000 A.1: 37 can also arrive as the two-byte sequence 0x40 0x25.
    const std::vector<std::uint8_t> wire{0x40, 0x25};
    const auto decoded = decode_varint(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, 37u);
    EXPECT_EQ(decoded->consumed, 2u);
}

TEST(Varint, DecodeRejectsTruncation) {
    EXPECT_FALSE(decode_varint({}).has_value());
    const std::vector<std::uint8_t> truncated{0x7b};  // declares 2 bytes, has 1
    EXPECT_FALSE(decode_varint(truncated).has_value());
    const std::vector<std::uint8_t> truncated8{0xc2, 0x19, 0x7c};
    EXPECT_FALSE(decode_varint(truncated8).has_value());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity) {
    const std::uint64_t value = GetParam();
    std::vector<std::uint8_t> out;
    encode_varint(out, value);
    EXPECT_EQ(out.size(), varint_size(value));
    const auto decoded = decode_varint(out);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, value);
    EXPECT_EQ(decoded->consumed, out.size());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 63ULL, 64ULL, 16383ULL, 16384ULL,
                                           (1ULL << 30) - 1, 1ULL << 30, kVarintMax));

TEST(Varint, RandomRoundTripSweep) {
    util::Rng rng{0xabcd};
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t value = rng.uniform_u64(kVarintMax + 1);
        std::vector<std::uint8_t> out;
        encode_varint(out, value);
        const auto decoded = decode_varint(out);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->value, value);
    }
}

// --- Property-based sweeps ---------------------------------------------------
//
// Seeded (fully deterministic) random exploration of the codec. Values are
// drawn per size class rather than uniformly over [0, 2^62): a uniform draw
// lands in the 8-byte class with probability ~1 - 2^-32, so the short
// encodings — where the interesting boundary behaviour lives — would
// effectively never be exercised.

std::uint64_t random_varint_value(util::Rng& rng) {
    switch (rng.uniform_u64(4)) {
        case 0: return rng.uniform_u64(1ULL << 6);
        case 1: return rng.uniform_u64(1ULL << 14);
        case 2: return rng.uniform_u64(1ULL << 30);
        default: return rng.uniform_u64(kVarintMax + 1);
    }
}

TEST(VarintProperty, EncodeDecodeIdentityAcrossSizeClasses) {
    util::Rng rng{0x7a91ce11};
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t value = random_varint_value(rng);
        std::vector<std::uint8_t> out;
        encode_varint(out, value);
        ASSERT_EQ(out.size(), varint_size(value)) << "value=" << value;
        // Minimal-length invariant: the declared size class is the smallest
        // that fits, so re-encoding can never shrink.
        const auto decoded = decode_varint(out);
        ASSERT_TRUE(decoded.has_value()) << "value=" << value;
        ASSERT_EQ(decoded->value, value);
        ASSERT_EQ(decoded->consumed, out.size());
        // Reader::varint and the minimal-only reader agree on minimal wire.
        Reader r{out};
        ASSERT_EQ(r.varint_minimal(), value);
        ASSERT_TRUE(r.done());
    }
}

TEST(VarintProperty, TrailingBytesDoNotLeakIntoTheDecode) {
    // A varint is self-delimiting: whatever follows it must not change the
    // decoded value or the consumed count.
    util::Rng rng{0x7a91ce12};
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t value = random_varint_value(rng);
        std::vector<std::uint8_t> wire;
        encode_varint(wire, value);
        const std::size_t varint_bytes = wire.size();
        const std::size_t junk = 1 + rng.uniform_u64(8);
        for (std::size_t j = 0; j < junk; ++j) {
            wire.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
        }
        const auto decoded = decode_varint(wire);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->value, value);
        ASSERT_EQ(decoded->consumed, varint_bytes);
    }
}

// Builds the `width`-byte (non-minimal when width > varint_size) encoding of
// `value`; width must be 1, 2, 4 or 8 and the value must fit its 2 low bits
// short of width*8.
std::vector<std::uint8_t> encode_with_width(std::uint64_t value, std::size_t width) {
    std::vector<std::uint8_t> out(width);
    for (std::size_t i = width; i-- > 0;) {
        out[i] = static_cast<std::uint8_t>(value & 0xff);
        value >>= 8;
    }
    const std::uint8_t length_bits[9] = {0, 0x00, 0x40, 0, 0x80, 0, 0, 0, 0xc0};
    out[0] = static_cast<std::uint8_t>(out[0] | length_bits[width]);
    return out;
}

TEST(VarintProperty, OverlongEncodingsDecodeButFailMinimalReads) {
    // RFC 9000 §16: a value may arrive in a longer-than-necessary encoding;
    // generic decodes accept it, frame-type reads (§12.4) must reject it.
    util::Rng rng{0x7a91ce13};
    int overlong_cases = 0;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t value = random_varint_value(rng);
        const std::size_t minimal = varint_size(value);
        // Pick any representable width; larger than minimal makes it overlong.
        std::size_t width = minimal;
        for (const std::size_t candidate : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            if (candidate > minimal && rng.chance(0.5)) width = candidate;
        }
        const auto wire = encode_with_width(value, width);
        const auto decoded = decode_varint(wire);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->value, value);
        ASSERT_EQ(decoded->consumed, width);

        Reader minimal_reader{wire};
        if (width == minimal) {
            ASSERT_EQ(minimal_reader.varint_minimal(), value);
        } else {
            ++overlong_cases;
            ASSERT_FALSE(minimal_reader.varint_minimal().has_value());
            ASSERT_EQ(minimal_reader.consumed(), 0u) << "failed read must not advance";
            // The permissive reader still accepts the same bytes.
            ASSERT_EQ(minimal_reader.varint(), value);
        }
    }
    EXPECT_GT(overlong_cases, 2000) << "sweep must actually exercise overlong wire";
}

TEST(Writer, BigEndianFixedWidths) {
    Writer w;
    w.u8(0x01);
    w.u16(0x0203);
    w.u32(0x04050607);
    w.u64(0x08090a0b0c0d0e0fULL);
    const auto& buf = w.buffer();
    ASSERT_EQ(buf.size(), 15u);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[1], 0x02);
    EXPECT_EQ(buf[2], 0x03);
    EXPECT_EQ(buf[3], 0x04);
    EXPECT_EQ(buf[14], 0x0f);
}

TEST(Writer, TruncatedBigEndian) {
    Writer w;
    w.be_truncated(0x11223344, 3);
    const auto& buf = w.buffer();
    ASSERT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0], 0x22);
    EXPECT_EQ(buf[1], 0x33);
    EXPECT_EQ(buf[2], 0x44);
}

TEST(Writer, ExternalBuffer) {
    std::vector<std::uint8_t> out{0xff};
    Writer w{out};
    w.u8(0x01);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1], 0x01);
}

TEST(Reader, SequentialReads) {
    const std::vector<std::uint8_t> data{0x01, 0x02, 0x03, 0x25, 0xaa, 0xbb};
    Reader r{data};
    EXPECT_EQ(*r.u8(), 0x01);
    EXPECT_EQ(*r.u16(), 0x0203);
    EXPECT_EQ(*r.varint(), 37u);
    const auto rest = r.bytes(2);
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ((*rest)[0], 0xaa);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.consumed(), 6u);
}

TEST(Reader, OutOfBoundsReturnsNullopt) {
    const std::vector<std::uint8_t> data{0x01};
    Reader r{data};
    EXPECT_FALSE(r.u16().has_value());
    EXPECT_FALSE(r.u32().has_value());
    EXPECT_FALSE(r.u64().has_value());
    EXPECT_FALSE(r.bytes(2).has_value());
    EXPECT_EQ(*r.u8(), 0x01);  // failed reads do not consume
    EXPECT_FALSE(r.u8().has_value());
}

TEST(Reader, PeekRestDoesNotAdvance) {
    const std::vector<std::uint8_t> data{0x01, 0x02, 0x03};
    Reader r{data};
    (void)r.u8();
    EXPECT_EQ(r.peek_rest().size(), 2u);
    EXPECT_EQ(r.remaining(), 2u);
}

TEST(Reader, BeTruncatedWidthValidation) {
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
    Reader r{data};
    EXPECT_FALSE(r.be_truncated(0).has_value());
    EXPECT_FALSE(r.be_truncated(9).has_value());
    EXPECT_EQ(*r.be_truncated(2), 0x0102u);
}

}  // namespace
}  // namespace spinscope::quic
