// Unit tests for the RFC 9000 §16 varint codec and the Reader/Writer
// helpers, including the RFC's worked examples (Appendix A.1).

#include <gtest/gtest.h>

#include <vector>

#include "quic/varint.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

TEST(Varint, SizeSelection) {
    EXPECT_EQ(varint_size(0), 1u);
    EXPECT_EQ(varint_size(63), 1u);
    EXPECT_EQ(varint_size(64), 2u);
    EXPECT_EQ(varint_size(16383), 2u);
    EXPECT_EQ(varint_size(16384), 4u);
    EXPECT_EQ(varint_size((1ULL << 30) - 1), 4u);
    EXPECT_EQ(varint_size(1ULL << 30), 8u);
    EXPECT_EQ(varint_size(kVarintMax), 8u);
}

TEST(Varint, Rfc9000Examples) {
    // RFC 9000 A.1: the four canonical encodings.
    struct Example {
        std::uint64_t value;
        std::vector<std::uint8_t> wire;
    };
    const Example examples[] = {
        {37, {0x25}},
        {15293, {0x7b, 0xbd}},
        {494878333, {0x9d, 0x7f, 0x3e, 0x7d}},
        {151288809941952652ULL, {0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c}},
    };
    for (const auto& ex : examples) {
        std::vector<std::uint8_t> out;
        encode_varint(out, ex.value);
        EXPECT_EQ(out, ex.wire);
        const auto decoded = decode_varint(ex.wire);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->value, ex.value);
        EXPECT_EQ(decoded->consumed, ex.wire.size());
    }
}

TEST(Varint, TwoByteEncodingOfSmallValue) {
    // RFC 9000 A.1: 37 can also arrive as the two-byte sequence 0x40 0x25.
    const std::vector<std::uint8_t> wire{0x40, 0x25};
    const auto decoded = decode_varint(wire);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, 37u);
    EXPECT_EQ(decoded->consumed, 2u);
}

TEST(Varint, DecodeRejectsTruncation) {
    EXPECT_FALSE(decode_varint({}).has_value());
    const std::vector<std::uint8_t> truncated{0x7b};  // declares 2 bytes, has 1
    EXPECT_FALSE(decode_varint(truncated).has_value());
    const std::vector<std::uint8_t> truncated8{0xc2, 0x19, 0x7c};
    EXPECT_FALSE(decode_varint(truncated8).has_value());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity) {
    const std::uint64_t value = GetParam();
    std::vector<std::uint8_t> out;
    encode_varint(out, value);
    EXPECT_EQ(out.size(), varint_size(value));
    const auto decoded = decode_varint(out);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->value, value);
    EXPECT_EQ(decoded->consumed, out.size());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 63ULL, 64ULL, 16383ULL, 16384ULL,
                                           (1ULL << 30) - 1, 1ULL << 30, kVarintMax));

TEST(Varint, RandomRoundTripSweep) {
    util::Rng rng{0xabcd};
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t value = rng.uniform_u64(kVarintMax + 1);
        std::vector<std::uint8_t> out;
        encode_varint(out, value);
        const auto decoded = decode_varint(out);
        ASSERT_TRUE(decoded.has_value());
        ASSERT_EQ(decoded->value, value);
    }
}

TEST(Writer, BigEndianFixedWidths) {
    Writer w;
    w.u8(0x01);
    w.u16(0x0203);
    w.u32(0x04050607);
    w.u64(0x08090a0b0c0d0e0fULL);
    const auto& buf = w.buffer();
    ASSERT_EQ(buf.size(), 15u);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[1], 0x02);
    EXPECT_EQ(buf[2], 0x03);
    EXPECT_EQ(buf[3], 0x04);
    EXPECT_EQ(buf[14], 0x0f);
}

TEST(Writer, TruncatedBigEndian) {
    Writer w;
    w.be_truncated(0x11223344, 3);
    const auto& buf = w.buffer();
    ASSERT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0], 0x22);
    EXPECT_EQ(buf[1], 0x33);
    EXPECT_EQ(buf[2], 0x44);
}

TEST(Writer, ExternalBuffer) {
    std::vector<std::uint8_t> out{0xff};
    Writer w{out};
    w.u8(0x01);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1], 0x01);
}

TEST(Reader, SequentialReads) {
    const std::vector<std::uint8_t> data{0x01, 0x02, 0x03, 0x25, 0xaa, 0xbb};
    Reader r{data};
    EXPECT_EQ(*r.u8(), 0x01);
    EXPECT_EQ(*r.u16(), 0x0203);
    EXPECT_EQ(*r.varint(), 37u);
    const auto rest = r.bytes(2);
    ASSERT_TRUE(rest.has_value());
    EXPECT_EQ((*rest)[0], 0xaa);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.consumed(), 6u);
}

TEST(Reader, OutOfBoundsReturnsNullopt) {
    const std::vector<std::uint8_t> data{0x01};
    Reader r{data};
    EXPECT_FALSE(r.u16().has_value());
    EXPECT_FALSE(r.u32().has_value());
    EXPECT_FALSE(r.u64().has_value());
    EXPECT_FALSE(r.bytes(2).has_value());
    EXPECT_EQ(*r.u8(), 0x01);  // failed reads do not consume
    EXPECT_FALSE(r.u8().has_value());
}

TEST(Reader, PeekRestDoesNotAdvance) {
    const std::vector<std::uint8_t> data{0x01, 0x02, 0x03};
    Reader r{data};
    (void)r.u8();
    EXPECT_EQ(r.peek_rest().size(), 2u);
    EXPECT_EQ(r.remaining(), 2u);
}

TEST(Reader, BeTruncatedWidthValidation) {
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
    Reader r{data};
    EXPECT_FALSE(r.be_truncated(0).has_value());
    EXPECT_FALSE(r.be_truncated(9).has_value());
    EXPECT_EQ(*r.be_truncated(2), 0x0102u);
}

}  // namespace
}  // namespace spinscope::quic
