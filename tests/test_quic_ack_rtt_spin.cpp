// Unit tests for AckTracker, RttEstimator and SpinState.

#include <gtest/gtest.h>

#include "quic/ack_tracker.hpp"
#include "quic/rtt_estimator.hpp"
#include "quic/spin.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

using util::Duration;
using util::TimePoint;

TimePoint at_ms(std::int64_t ms) { return TimePoint::origin() + Duration::millis(ms); }

// --- AckTracker -------------------------------------------------------------

AckTracker::Config immediate_config() { return {1, Duration::zero()}; }

TEST(AckTracker, TracksLargestAndDuplicates) {
    AckTracker t{immediate_config()};
    EXPECT_EQ(t.largest_received(), kInvalidPacketNumber);
    EXPECT_TRUE(t.on_packet_received(5, true, at_ms(1)));
    EXPECT_EQ(t.largest_received(), 5u);
    EXPECT_FALSE(t.on_packet_received(5, true, at_ms(2)));  // duplicate
    EXPECT_TRUE(t.on_packet_received(3, true, at_ms(3)));
    EXPECT_EQ(t.largest_received(), 5u);
    EXPECT_TRUE(t.on_packet_received(9, true, at_ms(4)));
    EXPECT_EQ(t.largest_received(), 9u);
}

TEST(AckTracker, BuildsDescendingRanges) {
    AckTracker t{immediate_config()};
    for (const PacketNumber pn : {0, 1, 2, 5, 6, 9}) {
        t.on_packet_received(pn, true, at_ms(1));
    }
    const auto ack = t.build_ack(at_ms(2));
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->ranges.size(), 3u);
    EXPECT_EQ(ack->ranges[0].largest, 9u);
    EXPECT_EQ(ack->ranges[0].smallest, 9u);
    EXPECT_EQ(ack->ranges[1].largest, 6u);
    EXPECT_EQ(ack->ranges[1].smallest, 5u);
    EXPECT_EQ(ack->ranges[2].largest, 2u);
    EXPECT_EQ(ack->ranges[2].smallest, 0u);
}

TEST(AckTracker, HoleFillMergesAdjacentRanges) {
    // Regression: a reordered packet filling the gap between two ranges must
    // merge them — adjacent ranges cannot be encoded in an ACK frame.
    AckTracker t{immediate_config()};
    for (const PacketNumber pn : {0, 1, 2, 3}) t.on_packet_received(pn, true, at_ms(1));
    for (const PacketNumber pn : {5, 6, 7}) t.on_packet_received(pn, true, at_ms(2));
    t.on_packet_received(4, true, at_ms(3));  // fills the hole
    const auto ack = t.build_ack(at_ms(4));
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->ranges.size(), 1u);
    EXPECT_EQ(ack->ranges[0].smallest, 0u);
    EXPECT_EQ(ack->ranges[0].largest, 7u);
}

TEST(AckTracker, MergeUpwardAdjacent) {
    AckTracker t{immediate_config()};
    t.on_packet_received(3, true, at_ms(1));
    t.on_packet_received(5, true, at_ms(1));
    t.on_packet_received(4, true, at_ms(1));
    const auto ack = t.build_ack(at_ms(2));
    ASSERT_EQ(ack->ranges.size(), 1u);
    EXPECT_EQ(ack->ranges[0].smallest, 3u);
    EXPECT_EQ(ack->ranges[0].largest, 5u);
}

TEST(AckTracker, ImmediateThreshold) {
    AckTracker t{{2, Duration::millis(25)}};
    t.on_packet_received(0, true, at_ms(0));
    EXPECT_FALSE(t.ack_due_immediately());
    EXPECT_TRUE(t.ack_pending());
    t.on_packet_received(1, true, at_ms(1));
    EXPECT_TRUE(t.ack_due_immediately());
}

TEST(AckTracker, NonElicitingDoesNotForceAck) {
    AckTracker t{{2, Duration::millis(25)}};
    t.on_packet_received(0, false, at_ms(0));
    t.on_packet_received(1, false, at_ms(1));
    EXPECT_FALSE(t.ack_pending());
    EXPECT_FALSE(t.ack_due_immediately());
    EXPECT_TRUE(t.ack_deadline().is_never());
}

TEST(AckTracker, DeadlineFromOldestUnacked) {
    AckTracker t{{4, Duration::millis(25)}};
    t.on_packet_received(0, true, at_ms(10));
    t.on_packet_received(1, true, at_ms(18));
    EXPECT_EQ(t.ack_deadline(), at_ms(35));
}

TEST(AckTracker, BuildAckResetsPendingAndStampsDelay) {
    AckTracker t{{2, Duration::millis(25)}};
    t.on_packet_received(0, true, at_ms(10));
    const auto ack = t.build_ack(at_ms(17));
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->ack_delay, Duration::millis(7));
    EXPECT_FALSE(t.ack_pending());
    // Ranges persist for later cumulative ACKs.
    const auto again = t.build_ack(at_ms(18));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->ranges.size(), 1u);
}

TEST(AckTracker, EmptyBuildsNothing) {
    AckTracker t{immediate_config()};
    EXPECT_FALSE(t.build_ack(at_ms(0)).has_value());
    EXPECT_FALSE(t.any_received());
}

// --- RttEstimator -----------------------------------------------------------

TEST(RttEstimator, FirstSampleInitializes) {
    RttEstimator rtt{Duration::millis(333)};
    EXPECT_FALSE(rtt.has_samples());
    EXPECT_EQ(rtt.smoothed_rtt(), Duration::millis(333));
    rtt.add_sample(Duration::millis(40), Duration::zero(), Duration::millis(25), false);
    EXPECT_TRUE(rtt.has_samples());
    EXPECT_EQ(rtt.latest_rtt(), Duration::millis(40));
    EXPECT_EQ(rtt.min_rtt(), Duration::millis(40));
    EXPECT_EQ(rtt.smoothed_rtt(), Duration::millis(40));
    EXPECT_EQ(rtt.rttvar(), Duration::millis(20));
}

TEST(RttEstimator, SmoothingFollowsRfc9002) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(100), Duration::zero(), Duration::millis(25), true);
    rtt.add_sample(Duration::millis(200), Duration::zero(), Duration::millis(25), true);
    // smoothed = 7/8*100 + 1/8*200 = 112.5ms; rttvar = 3/4*50 + 1/4*|100-200| = 62.5ms
    EXPECT_EQ(rtt.smoothed_rtt().count_micros(), 112500);
    EXPECT_EQ(rtt.rttvar().count_micros(), 62500);
}

TEST(RttEstimator, MinRttIgnoresAckDelay) {
    RttEstimator rtt;
    // The first sample is its own min_rtt, so RFC 9002 §5.3 forbids
    // adjusting it (the result would fall below min_rtt).
    rtt.add_sample(Duration::millis(50), Duration::millis(20), Duration::millis(25), true);
    EXPECT_EQ(rtt.min_rtt(), Duration::millis(50));
    EXPECT_EQ(rtt.smoothed_rtt(), Duration::millis(50));
    // A later inflated sample is adjusted by the reported delay.
    rtt.add_sample(Duration::millis(80), Duration::millis(20), Duration::millis(25), true);
    EXPECT_EQ(rtt.min_rtt(), Duration::millis(50));
    EXPECT_EQ(rtt.adjusted_samples_ms().back(), 60.0);
}

TEST(RttEstimator, AckDelayCappedAfterHandshake) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(10), Duration::zero(), Duration::millis(25), true);
    // Reported delay 100ms but peer advertised max 25ms -> subtract only 25.
    rtt.add_sample(Duration::millis(100), Duration::millis(100), Duration::millis(25), true);
    EXPECT_EQ(rtt.adjusted_samples_ms().back(), 75.0);
}

TEST(RttEstimator, AckDelayUncappedBeforeHandshakeConfirmed) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(10), Duration::zero(), Duration::millis(25), false);
    rtt.add_sample(Duration::millis(100), Duration::millis(60), Duration::millis(25), false);
    EXPECT_EQ(rtt.adjusted_samples_ms().back(), 40.0);
}

TEST(RttEstimator, NeverAdjustsBelowMinRtt) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(50), Duration::zero(), Duration::millis(25), true);
    // Adjusting 55 - 20 = 35 < min (50) -> keep unadjusted 55.
    rtt.add_sample(Duration::millis(55), Duration::millis(20), Duration::millis(100), true);
    EXPECT_EQ(rtt.adjusted_samples_ms().back(), 55.0);
}

TEST(RttEstimator, NegativeSamplesIgnored) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(-5), Duration::zero(), Duration::millis(25), true);
    EXPECT_FALSE(rtt.has_samples());
}

TEST(RttEstimator, PtoFormula) {
    RttEstimator rtt;
    rtt.add_sample(Duration::millis(100), Duration::zero(), Duration::millis(25), true);
    // pto = smoothed + max(4*rttvar, 1ms) + max_ack_delay = 100 + 200 + 25.
    EXPECT_EQ(rtt.pto(Duration::millis(25)), Duration::millis(325));
}

// --- SpinState ---------------------------------------------------------------

SpinConfig spin_on() { return {SpinPolicy::spin, 0, SpinPolicy::always_zero}; }

TEST(Spin, InitialValueIsZero) {
    util::Rng rng{1};
    SpinState client{Role::client, spin_on(), rng};
    SpinState server{Role::server, spin_on(), rng};
    EXPECT_FALSE(client.outgoing_value(rng));
    EXPECT_FALSE(server.outgoing_value(rng));
    EXPECT_TRUE(client.participating());
}

TEST(Spin, ClientInvertsServerReflects) {
    util::Rng rng{2};
    SpinState client{Role::client, spin_on(), rng};
    SpinState server{Role::server, spin_on(), rng};

    // Server saw client 0 -> reflects 0; client saw server 0 -> sends 1.
    server.on_packet_received(0, false);
    EXPECT_FALSE(server.outgoing_value(rng));
    client.on_packet_received(0, false);
    EXPECT_TRUE(client.outgoing_value(rng));
    // Server sees the 1 -> reflects 1; client sees 1 -> sends 0.
    server.on_packet_received(1, true);
    EXPECT_TRUE(server.outgoing_value(rng));
    client.on_packet_received(1, true);
    EXPECT_FALSE(client.outgoing_value(rng));
}

TEST(Spin, OnlyHighestPacketNumberCounts) {
    util::Rng rng{3};
    SpinState server{Role::server, spin_on(), rng};
    server.on_packet_received(10, true);
    // A stale (reordered) packet with lower pn must not change the value.
    server.on_packet_received(5, false);
    EXPECT_TRUE(server.outgoing_value(rng));
    server.on_packet_received(11, false);
    EXPECT_FALSE(server.outgoing_value(rng));
}

TEST(Spin, FixedPolicies) {
    util::Rng rng{4};
    SpinState zero{Role::server, {SpinPolicy::always_zero, 0, SpinPolicy::always_zero}, rng};
    SpinState one{Role::server, {SpinPolicy::always_one, 0, SpinPolicy::always_zero}, rng};
    zero.on_packet_received(1, true);
    one.on_packet_received(1, false);
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(zero.outgoing_value(rng));
        EXPECT_TRUE(one.outgoing_value(rng));
    }
    EXPECT_FALSE(zero.participating());
}

TEST(Spin, GreasePerConnectionIsStable) {
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        util::Rng rng{seed};
        SpinState grease{Role::server,
                         {SpinPolicy::grease_per_connection, 0, SpinPolicy::always_zero}, rng};
        const bool first = grease.outgoing_value(rng);
        for (int i = 0; i < 10; ++i) EXPECT_EQ(grease.outgoing_value(rng), first);
    }
}

TEST(Spin, GreasePerPacketVaries) {
    util::Rng rng{6};
    SpinState grease{Role::server, {SpinPolicy::grease_per_packet, 0, SpinPolicy::always_zero},
                     rng};
    int ones = 0;
    for (int i = 0; i < 1000; ++i) {
        if (grease.outgoing_value(rng)) ++ones;
    }
    EXPECT_GT(ones, 400);
    EXPECT_LT(ones, 600);
}

class SpinLottery : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SpinLottery, DisablesAtConfiguredRate) {
    const std::uint32_t one_in = GetParam();
    util::Rng rng{123};
    int disabled = 0;
    constexpr int kConnections = 32000;
    for (int i = 0; i < kConnections; ++i) {
        SpinState state{Role::server, {SpinPolicy::spin, one_in, SpinPolicy::always_zero}, rng};
        if (!state.participating()) ++disabled;
    }
    const double expected = 1.0 / one_in;
    EXPECT_NEAR(static_cast<double>(disabled) / kConnections, expected, expected * 0.35);
}

INSTANTIATE_TEST_SUITE_P(Rfc9000And9312, SpinLottery, ::testing::Values(8u, 16u));

TEST(Spin, LotteryFallbackPolicyApplied) {
    util::Rng rng{7};
    int saw_fallback = 0;
    for (int i = 0; i < 200; ++i) {
        SpinState state{Role::server, {SpinPolicy::spin, 2, SpinPolicy::always_one}, rng};
        if (!state.participating()) {
            ++saw_fallback;
            EXPECT_EQ(state.effective_policy(), SpinPolicy::always_one);
            EXPECT_TRUE(state.outgoing_value(rng));
        }
    }
    EXPECT_GT(saw_fallback, 50);
}

TEST(Spin, LotteryZeroNeverDisables) {
    util::Rng rng{8};
    for (int i = 0; i < 500; ++i) {
        SpinState state{Role::client, spin_on(), rng};
        EXPECT_TRUE(state.participating());
    }
}

}  // namespace
}  // namespace spinscope::quic
