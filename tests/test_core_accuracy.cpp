// Unit tests for per-connection assessment: classification, the grease
// filter and the paper's two accuracy metrics.

#include <gtest/gtest.h>

#include "core/accuracy.hpp"

namespace spinscope::core {
namespace {

using util::Duration;
using util::TimePoint;

qlog::PacketEvent one_rtt(std::int64_t ms, quic::PacketNumber pn, bool spin) {
    return {TimePoint::origin() + Duration::millis(ms), quic::PacketType::one_rtt, pn, spin,
            100, true};
}

/// Trace with a clean spin square wave of `period_ms` and a stack baseline.
qlog::Trace spinning_trace(std::int64_t period_ms, std::vector<double> quic_samples) {
    qlog::Trace trace;
    trace.host = "www.test";
    trace.ip = "10.0.0.1";
    trace.outcome = qlog::ConnectionOutcome::ok;
    bool value = false;
    for (int i = 0; i < 8; ++i) {
        trace.record_received(one_rtt(i * period_ms, static_cast<unsigned>(i), value));
        value = !value;
    }
    trace.metrics.rtt_samples_ms = std::move(quic_samples);
    return trace;
}

TEST(Assess, NoOneRttPackets) {
    qlog::Trace trace;
    trace.record_received({TimePoint::origin(), quic::PacketType::handshake, 0, false, 40,
                           true});
    const auto a = assess_connection(trace);
    EXPECT_EQ(a.behavior, SpinBehavior::no_one_rtt);
    EXPECT_FALSE(a.comparable(PacketOrder::received));
}

TEST(Assess, AllZeroClassification) {
    qlog::Trace trace;
    for (int i = 0; i < 5; ++i) trace.record_received(one_rtt(i * 10, static_cast<unsigned>(i), false));
    trace.metrics.rtt_samples_ms = {10.0};
    EXPECT_EQ(assess_connection(trace).behavior, SpinBehavior::all_zero);
}

TEST(Assess, AllOneClassification) {
    qlog::Trace trace;
    for (int i = 0; i < 5; ++i) trace.record_received(one_rtt(i * 10, static_cast<unsigned>(i), true));
    trace.metrics.rtt_samples_ms = {10.0};
    EXPECT_EQ(assess_connection(trace).behavior, SpinBehavior::all_one);
}

TEST(Assess, SpinningClassificationAndMetrics) {
    // Spin period 40 ms; stack estimates around 32 ms.
    const auto trace = spinning_trace(40, {30.0, 32.0, 34.0});
    const auto a = assess_connection(trace);
    EXPECT_EQ(a.behavior, SpinBehavior::spinning);
    EXPECT_TRUE(a.has_quic_baseline);
    EXPECT_DOUBLE_EQ(a.quic_mean_ms, 32.0);
    EXPECT_DOUBLE_EQ(a.quic_min_ms, 30.0);
    EXPECT_DOUBLE_EQ(a.spin_received.mean_ms(), 40.0);
    ASSERT_TRUE(a.comparable(PacketOrder::received));
    EXPECT_DOUBLE_EQ(*a.abs_diff_ms(PacketOrder::received), 8.0);
    EXPECT_DOUBLE_EQ(*a.mapped_ratio(PacketOrder::received), 40.0 / 32.0);
}

TEST(Assess, MappedRatioNegativeOnUnderestimation) {
    // Spin period 20 ms; stack says 40 ms -> ratio = -(40/20) = -2... but the
    // grease filter fires first (20 < min 40), so the behaviour is greased
    // and the metric still computes.
    const auto trace = spinning_trace(20, {40.0, 44.0});
    const auto a = assess_connection(trace);
    EXPECT_EQ(a.behavior, SpinBehavior::greased);
    ASSERT_TRUE(a.mapped_ratio(PacketOrder::received).has_value());
    EXPECT_DOUBLE_EQ(*a.mapped_ratio(PacketOrder::received), -(42.0 / 20.0));
    EXPECT_DOUBLE_EQ(*a.abs_diff_ms(PacketOrder::received), 20.0 - 42.0);
}

TEST(Assess, GreaseFilterTriggersOnShortSample) {
    // One ultra-short sample below the stack minimum marks the connection.
    qlog::Trace trace;
    trace.record_received(one_rtt(0, 0, false));
    trace.record_received(one_rtt(40, 1, true));
    trace.record_received(one_rtt(42, 2, false));  // 2 ms sample
    trace.record_received(one_rtt(80, 3, true));
    trace.metrics.rtt_samples_ms = {30.0, 31.0};
    EXPECT_EQ(assess_connection(trace).behavior, SpinBehavior::greased);
}

TEST(Assess, SpinWithoutBaselineIsStillSpinning) {
    auto trace = spinning_trace(40, {});
    const auto a = assess_connection(trace);
    EXPECT_EQ(a.behavior, SpinBehavior::spinning);
    EXPECT_FALSE(a.has_quic_baseline);
    EXPECT_FALSE(a.comparable(PacketOrder::received));
    EXPECT_FALSE(a.abs_diff_ms(PacketOrder::received).has_value());
    EXPECT_FALSE(a.mapped_ratio(PacketOrder::received).has_value());
}

TEST(Assess, SortedOrderRepairsReordering) {
    qlog::Trace trace;
    trace.outcome = qlog::ConnectionOutcome::ok;
    trace.record_received(one_rtt(0, 0, false));
    trace.record_received(one_rtt(40, 1, true));
    trace.record_received(one_rtt(80, 3, false));
    trace.record_received(one_rtt(81, 2, true));  // reordered straggler
    trace.record_received(one_rtt(120, 4, true));
    trace.metrics.rtt_samples_ms = {39.0};
    const auto a = assess_connection(trace);
    // Received order sees bogus short samples; sorted order does not.
    EXPECT_LT(a.spin_received.min_ms(), 2.0);
    EXPECT_GE(a.spin_sorted.min_ms(), 39.0);
}

TEST(Assess, SpinObservationsExtractsOnlyOneRtt) {
    qlog::Trace trace;
    trace.record_received({TimePoint::origin(), quic::PacketType::initial, 0, false, 0, true});
    trace.record_received(one_rtt(10, 1, true));
    const auto packets = spin_observations(trace);
    ASSERT_EQ(packets.size(), 1u);
    EXPECT_EQ(packets[0].packet_number, 1u);
}

TEST(Assess, RatioAlwaysAtLeastOneInMagnitude) {
    for (const double quic_mean : {10.0, 39.9, 40.0, 40.1, 200.0}) {
        const auto trace = spinning_trace(40, {quic_mean});
        const auto a = assess_connection(trace);
        const auto ratio = a.mapped_ratio(PacketOrder::received);
        ASSERT_TRUE(ratio.has_value());
        EXPECT_GE(std::abs(*ratio), 1.0);
        if (quic_mean <= 40.0) {
            EXPECT_GT(*ratio, 0.0);
        } else {
            EXPECT_LT(*ratio, 0.0);
        }
    }
}

}  // namespace
}  // namespace spinscope::core
