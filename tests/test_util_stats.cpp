// Unit tests for util statistics: RunningStats, quantile, Histogram,
// CategoricalCounts and the binomial pmf used for Figure 2's RFC overlays.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace spinscope::util {
namespace {

TEST(RunningStats, EmptyState) {
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_FALSE(s.min().has_value());
    EXPECT_FALSE(s.max().has_value());
}

TEST(RunningStats, KnownMoments) {
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(*s.min(), 2.0);
    EXPECT_DOUBLE_EQ(*s.max(), 9.0);
}

TEST(RunningStats, SingleValueVarianceZero) {
    RunningStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
    Rng rng{77};
    RunningStats all;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform_double(-5, 20);
        all.add(v);
        (i % 2 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(*left.min(), *all.min());
    EXPECT_DOUBLE_EQ(*left.max(), *all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, EmptyReturnsNullopt) {
    EXPECT_FALSE(quantile({}, 0.5).has_value());
}

TEST(Quantile, MedianAndExtremes) {
    const std::vector<double> v{5, 1, 4, 2, 3};
    EXPECT_DOUBLE_EQ(*quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(*quantile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(*quantile(v, 0.75), 7.5);
}

TEST(Quantile, ClampsQ) {
    const std::vector<double> v{1.0, 2.0};
    EXPECT_DOUBLE_EQ(*quantile(v, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(*quantile(v, 2.0), 2.0);
}

TEST(Histogram, RejectsBadEdges) {
    EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow) {
    Histogram h{{0.0, 10.0, 20.0}};
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0 (inclusive lower edge)
    h.add(9.999);  // bin 0
    h.add(10.0);   // bin 1
    h.add(19.0);   // bin 1
    h.add(20.0);   // overflow (exclusive upper edge)
    h.add(99.0);   // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bin(0), 2u);
    EXPECT_EQ(h.bin(1), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_NEAR(h.share(0), 2.0 / 7.0, 1e-12);
    EXPECT_NEAR(h.underflow_share(), 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(h.overflow_share(), 2.0 / 7.0, 1e-12);
}

TEST(Histogram, AddNWeights) {
    Histogram h{{0.0, 1.0}};
    h.add_n(0.5, 10);
    EXPECT_EQ(h.bin(0), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, FractionBelowEdge) {
    Histogram h{{0.0, 25.0, 50.0, 100.0}};
    h.add(-5.0);
    h.add(10.0);
    h.add(30.0);
    h.add(70.0);
    h.add(200.0);
    EXPECT_NEAR(h.fraction_below_edge(0.0), 1.0 / 5.0, 1e-12);
    EXPECT_NEAR(h.fraction_below_edge(25.0), 2.0 / 5.0, 1e-12);
    EXPECT_NEAR(h.fraction_below_edge(50.0), 3.0 / 5.0, 1e-12);
    EXPECT_NEAR(h.fraction_below_edge(100.0), 4.0 / 5.0, 1e-12);
}

TEST(Histogram, ShareBetween) {
    Histogram h{{0.0, 1.0, 2.0, 3.0}};
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    h.add(2.6);
    EXPECT_NEAR(h.share_between(1, 3), 3.0 / 4.0, 1e-12);
    EXPECT_NEAR(h.share_between(0, 1), 1.0 / 4.0, 1e-12);
}

TEST(Histogram, EmptySharesAreZero) {
    Histogram h{{0.0, 1.0}};
    EXPECT_DOUBLE_EQ(h.share(0), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction_below_edge(1.0), 0.0);
}

TEST(CategoricalCounts, SharesAndBounds) {
    CategoricalCounts c{3};
    c.add(0);
    c.add(2, 3);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_NEAR(c.share(2), 0.75, 1e-12);
    EXPECT_NEAR(c.share(1), 0.0, 1e-12);
    EXPECT_THROW(c.add(3), std::out_of_range);
}

TEST(BinomialPmf, MatchesClosedForm) {
    // Bin(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
    EXPECT_NEAR(binomial_pmf(4, 0, 0.5), 1.0 / 16, 1e-12);
    EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16, 1e-12);
    EXPECT_NEAR(binomial_pmf(4, 4, 0.5), 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, EdgeProbabilities) {
    EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(binomial_pmf(5, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(binomial_pmf(5, 2, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(binomial_pmf(5, 6, 0.5), 0.0);  // k > n
}

TEST(BinomialPmf, RfcLotteryValues) {
    // The Figure 2 overlay: spinning in all 12 weeks with p = 15/16.
    EXPECT_NEAR(binomial_pmf(12, 12, 15.0 / 16.0), std::pow(15.0 / 16.0, 12), 1e-12);
    EXPECT_NEAR(binomial_pmf(12, 12, 7.0 / 8.0), std::pow(7.0 / 8.0, 12), 1e-12);
}

// Property: pmf sums to 1 for a sweep of (n, p).
class BinomialSum : public ::testing::TestWithParam<std::pair<unsigned, double>> {};

TEST_P(BinomialSum, SumsToOne) {
    const auto [n, p] = GetParam();
    double sum = 0.0;
    for (unsigned k = 0; k <= n; ++k) sum += binomial_pmf(n, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinomialSum,
                         ::testing::Values(std::pair{1u, 0.5}, std::pair{12u, 15.0 / 16.0},
                                           std::pair{12u, 7.0 / 8.0}, std::pair{30u, 0.1},
                                           std::pair{64u, 0.9}));

}  // namespace
}  // namespace spinscope::util
