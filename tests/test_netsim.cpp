// Unit tests for the discrete-event simulator and the link model.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"

namespace spinscope::netsim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
    sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
    sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now().count_nanos(), Duration::millis(30).count_nanos());
    EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
    Simulator sim;
    bool ran = false;
    sim.schedule_after(Duration::millis(10), [&] {
        sim.schedule_at(TimePoint::origin(), [&] {
            ran = true;
            EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(10));
        });
    });
    sim.run();
    EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(Duration::millis(5), [&] { ++count; });
    sim.schedule_after(Duration::millis(15), [&] { ++count; });
    const bool drained = sim.run_until(TimePoint::origin() + Duration::millis(10));
    EXPECT_FALSE(drained);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(10));
    EXPECT_EQ(sim.pending(), 1u);
    EXPECT_TRUE(sim.run_until(TimePoint::origin() + Duration::seconds(1)));
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) sim.schedule_after(Duration::millis(1), recurse);
    };
    sim.schedule_after(Duration::millis(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 5);
}

TEST(Simulator, RunStepsBounds) {
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10; ++i) sim.schedule_after(Duration::millis(i), [&] { ++count; });
    sim.run_steps(4);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(sim.pending(), 6u);
}

TEST(Timer, FiresOnceAtExpiry) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(7), [&] { ++fires; });
    EXPECT_TRUE(timer.armed());
    EXPECT_EQ(timer.expiry(), TimePoint::origin() + Duration::millis(7));
    sim.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(timer.armed());
}

TEST(Timer, CancelSuppressesFiring) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(5), [&] { ++fires; });
    timer.cancel();
    EXPECT_FALSE(timer.armed());
    sim.run();
    EXPECT_EQ(fires, 0);
}

TEST(Timer, RearmInvalidatesPrevious) {
    Simulator sim;
    Timer timer{sim};
    std::vector<int> fired;
    timer.set_after(Duration::millis(5), [&] { fired.push_back(1); });
    timer.set_after(Duration::millis(9), [&] { fired.push_back(2); });
    sim.run();
    EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(Timer, DestructionWithPendingFiringIsSafe) {
    Simulator sim;
    int fires = 0;
    {
        Timer timer{sim};
        timer.set_after(Duration::millis(3), [&] { ++fires; });
    }  // timer destroyed with the event still queued
    sim.run();
    EXPECT_EQ(fires, 0);  // generation state kept alive, callback suppressed
}

TEST(Timer, RearmFromInsideCallback) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    std::function<void()> cb = [&] {
        if (++fires < 3) timer.set_after(Duration::millis(1), cb);
    };
    timer.set_after(Duration::millis(1), cb);
    sim.run();
    EXPECT_EQ(fires, 3);
}

// ---------------------------------------------------------------------------

Datagram make_datagram(std::size_t size, std::uint8_t fill = 0xab) {
    return Datagram(size, fill);
}

TEST(Link, DeliversWithBaseDelay) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(12);
    Link link{sim, config, util::Rng{1}};
    TimePoint delivered_at = TimePoint::never();
    link.set_receiver([&](const Datagram& dg) {
        delivered_at = sim.now();
        EXPECT_EQ(dg.size(), 100u);
    });
    link.send(make_datagram(100));
    sim.run();
    EXPECT_EQ(delivered_at, TimePoint::origin() + Duration::millis(12));
    EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Link, LossDropsDatagrams) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.loss_probability = 0.5;
    Link link{sim, config, util::Rng{2}};
    int received = 0;
    link.set_receiver([&](const Datagram&) { ++received; });
    constexpr int kSent = 4000;
    for (int i = 0; i < kSent; ++i) link.send(make_datagram(10));
    sim.run();
    EXPECT_EQ(link.stats().sent, static_cast<std::uint64_t>(kSent));
    EXPECT_EQ(link.stats().delivered + link.stats().dropped,
              static_cast<std::uint64_t>(kSent));
    EXPECT_NEAR(static_cast<double>(received) / kSent, 0.5, 0.03);
}

TEST(Link, FifoEnforcedUnderJitter) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(5);
    config.jitter_scale = Duration::millis(4);
    config.jitter_sigma = 1.0;
    Link link{sim, config, util::Rng{3}};
    std::vector<std::uint8_t> order;
    link.set_receiver([&](const Datagram& dg) { order.push_back(dg[0]); });
    for (std::uint8_t i = 0; i < 200; ++i) link.send(Datagram(4, i));
    sim.run();
    ASSERT_EQ(order.size(), 200u);
    for (std::uint8_t i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Link, ReorderEventsCanOvertake) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(5);
    config.reorder_probability = 0.3;
    config.reorder_extra_min = Duration::millis(2);
    config.reorder_extra_max = Duration::millis(10);
    Link link{sim, config, util::Rng{4}};
    std::vector<std::uint8_t> order;
    link.set_receiver([&](const Datagram& dg) { order.push_back(dg[0]); });
    for (std::uint8_t i = 0; i < 100; ++i) {
        link.send(Datagram(4, i));
        // Space sends so an extra delay can actually cause overtaking.
        sim.run_until(sim.now() + Duration::millis(1));
    }
    sim.run();
    ASSERT_EQ(order.size(), 100u);
    bool out_of_order = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
        if (order[i] < order[i - 1]) out_of_order = true;
    }
    EXPECT_TRUE(out_of_order);
    EXPECT_GT(link.stats().reordered, 0u);
}

TEST(Link, TapsSeeDeliveredDatagramsOnly) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.loss_probability = 0.5;
    Link link{sim, config, util::Rng{5}};
    int tapped = 0;
    int received = 0;
    link.add_tap([&](TimePoint, const Datagram&) { ++tapped; });
    link.set_receiver([&](const Datagram&) { ++received; });
    for (int i = 0; i < 1000; ++i) link.send(make_datagram(8));
    sim.run();
    EXPECT_EQ(tapped, received);
    EXPECT_LT(tapped, 1000);
}

TEST(Link, BandwidthSerializesBackToBack) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.bandwidth_bps = 8'000'000;  // 1 byte / us
    Link link{sim, config, util::Rng{6}};
    std::vector<TimePoint> arrivals;
    link.set_receiver([&](const Datagram&) { arrivals.push_back(sim.now()); });
    link.send(make_datagram(1000));  // 1 ms serialization
    link.send(make_datagram(1000));
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // Second datagram leaves a full serialization slot later.
    EXPECT_EQ((arrivals[1] - arrivals[0]).count_micros(), 1000);
}

TEST(Link, NoReceiverIsSafe) {
    Simulator sim;
    Link link{sim, LinkConfig{}, util::Rng{7}};
    link.send(make_datagram(10));
    sim.run();
    EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Path, BaseRttIsSumOfDirections) {
    Simulator sim;
    util::Rng rng{8};
    LinkConfig forward;
    forward.base_delay = Duration::millis(7);
    LinkConfig back;
    back.base_delay = Duration::millis(9);
    Path path{sim, forward, back, rng};
    EXPECT_EQ(path.base_rtt(), Duration::millis(16));
}

}  // namespace
}  // namespace spinscope::netsim
