// Unit tests for the discrete-event simulator and the link model.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace spinscope::netsim {
namespace {

using util::Duration;
using util::TimePoint;

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
    sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
    sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now().count_nanos(), Duration::millis(30).count_nanos());
    EXPECT_EQ(sim.processed(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_after(Duration::millis(5), [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, PastEventsClampToNow) {
    Simulator sim;
    bool ran = false;
    sim.schedule_after(Duration::millis(10), [&] {
        sim.schedule_at(TimePoint::origin(), [&] {
            ran = true;
            EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(10));
        });
    });
    sim.run();
    EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(Duration::millis(5), [&] { ++count; });
    sim.schedule_after(Duration::millis(15), [&] { ++count; });
    const bool drained = sim.run_until(TimePoint::origin() + Duration::millis(10));
    EXPECT_FALSE(drained);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(10));
    EXPECT_EQ(sim.pending(), 1u);
    EXPECT_TRUE(sim.run_until(TimePoint::origin() + Duration::seconds(1)));
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) sim.schedule_after(Duration::millis(1), recurse);
    };
    sim.schedule_after(Duration::millis(1), recurse);
    sim.run();
    EXPECT_EQ(depth, 5);
}

TEST(Simulator, RunStepsBounds) {
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10; ++i) sim.schedule_after(Duration::millis(i), [&] { ++count; });
    sim.run_steps(4);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(sim.pending(), 6u);
}

TEST(Timer, FiresOnceAtExpiry) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(7), [&] { ++fires; });
    EXPECT_TRUE(timer.armed());
    EXPECT_EQ(timer.expiry(), TimePoint::origin() + Duration::millis(7));
    sim.run();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(timer.armed());
}

TEST(Timer, CancelSuppressesFiring) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(5), [&] { ++fires; });
    timer.cancel();
    EXPECT_FALSE(timer.armed());
    sim.run();
    EXPECT_EQ(fires, 0);
}

TEST(Timer, RearmInvalidatesPrevious) {
    Simulator sim;
    Timer timer{sim};
    std::vector<int> fired;
    timer.set_after(Duration::millis(5), [&] { fired.push_back(1); });
    timer.set_after(Duration::millis(9), [&] { fired.push_back(2); });
    sim.run();
    EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(Timer, DestructionWithPendingFiringIsSafe) {
    Simulator sim;
    int fires = 0;
    {
        Timer timer{sim};
        timer.set_after(Duration::millis(3), [&] { ++fires; });
    }  // timer destroyed with the event still queued
    sim.run();
    EXPECT_EQ(fires, 0);  // generation state kept alive, callback suppressed
}

TEST(Timer, RearmWithStaleFiringQueuedFiresOnlyNewExpiry) {
    // Arm at 5 ms, re-arm to 2 ms while the 5 ms firing is still queued: the
    // stale queue entry must become a no-op (generation bumped), the new one
    // must fire, and the timer must not "fire twice".
    Simulator sim;
    Timer timer{sim};
    std::vector<std::int64_t> fired_at;
    timer.set_after(Duration::millis(5), [&] { fired_at.push_back(sim.now().count_nanos()); });
    timer.set_after(Duration::millis(2), [&] { fired_at.push_back(sim.now().count_nanos()); });
    EXPECT_EQ(sim.pending(), 2u);  // the stale entry is still in the queue
    sim.run();
    ASSERT_EQ(fired_at.size(), 1u);
    EXPECT_EQ(fired_at[0], Duration::millis(2).count_nanos());
    EXPECT_EQ(sim.processed(), 2u);  // stale entry processed as a no-op
    EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmAfterPartialRunSuppressesStaleEntry) {
    // Run past nothing, leave the first firing queued, then re-arm *later*:
    // the earlier queued entry has a stale generation and must not fire.
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(4), [&] { ++fires; });
    sim.run_until(TimePoint::origin() + Duration::millis(1));  // firing still queued
    timer.set_after(Duration::millis(10), [&] { fires += 100; });
    sim.run();
    EXPECT_EQ(fires, 100);  // only the re-armed firing ran
}

TEST(Timer, CancelThenRearmStillFires) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    timer.set_after(Duration::millis(3), [&] { fires = 1; });
    timer.cancel();
    timer.set_after(Duration::millis(6), [&] { fires = 2; });
    sim.run();
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(timer.expiry(), TimePoint::never());
}

TEST(Timer, DestroyAfterPartialRunWithQueuedFiringIsSafe) {
    Simulator sim;
    int fires = 0;
    {
        Timer timer{sim};
        timer.set_after(Duration::millis(5), [&] { ++fires; });
        sim.run_until(TimePoint::origin() + Duration::millis(1));
        EXPECT_EQ(sim.pending(), 1u);
    }  // destroyed while its (now stale) firing is still queued
    sim.run();
    EXPECT_EQ(fires, 0);
}

TEST(Simulator, RunStepsSafetyValveStopsSelfRescheduling) {
    // A pathological event that always reschedules itself would hang run();
    // run_steps must bound it to exactly max_events callbacks.
    Simulator sim;
    std::uint64_t count = 0;
    std::function<void()> reschedule = [&] {
        ++count;
        sim.schedule_after(Duration::millis(1), reschedule);
    };
    sim.schedule_after(Duration::millis(1), reschedule);
    sim.run_steps(100);
    EXPECT_EQ(count, 100u);
    EXPECT_EQ(sim.pending(), 1u);  // the next self-rescheduled event remains
    EXPECT_EQ(sim.processed(), 100u);
}

TEST(Simulator, RunStepsZeroIsNoOp) {
    Simulator sim;
    int count = 0;
    sim.schedule_after(Duration::millis(1), [&] { ++count; });
    sim.run_steps(0);
    EXPECT_EQ(count, 0);
    EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, TracksQueueDepthHighWaterMark) {
    Simulator sim;
    for (int i = 0; i < 5; ++i) sim.schedule_after(Duration::millis(i), [] {});
    EXPECT_EQ(sim.queue_depth_high_water(), 5u);
    sim.run();
    // Draining does not lower the high-water mark.
    EXPECT_EQ(sim.queue_depth_high_water(), 5u);
    EXPECT_EQ(sim.scheduled(), 5u);
}

TEST(Simulator, CountsProcessedEventsPerCategory) {
    Simulator sim;
    sim.schedule_after(Duration::millis(1), [] {}, "io");
    sim.schedule_after(Duration::millis(2), [] {}, "io");
    sim.schedule_after(Duration::millis(3), [] {}, "app");
    sim.schedule_after(Duration::millis(4), [] {});  // untagged
    sim.run();
    const auto& counts = sim.category_counts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_STREQ(counts[0].first, "io");
    EXPECT_EQ(counts[0].second, 2u);
    EXPECT_STREQ(counts[1].first, "app");
    EXPECT_EQ(counts[1].second, 1u);
}

TEST(Simulator, PublishMetricsExportsCountersAndHighWater) {
    Simulator sim;
    sim.schedule_after(Duration::millis(1), [] {}, "io");
    sim.schedule_after(Duration::millis(2), [] {});
    sim.run();

    telemetry::MetricsRegistry registry;
    sim.publish_metrics(registry);
    EXPECT_EQ(registry.counter("netsim.sim.events_scheduled").value(), 2u);
    EXPECT_EQ(registry.counter("netsim.sim.events_processed").value(), 2u);
    EXPECT_EQ(registry.counter("netsim.sim.events.io").value(), 1u);
    EXPECT_DOUBLE_EQ(registry.gauge("netsim.sim.queue_depth_hwm").value(), 2.0);

    // Additive publish: a second simulator merges counters, max-merges hwm.
    Simulator other;
    for (int i = 0; i < 4; ++i) other.schedule_after(Duration::millis(i), [] {});
    other.run();
    other.publish_metrics(registry);
    EXPECT_EQ(registry.counter("netsim.sim.events_processed").value(), 6u);
    EXPECT_DOUBLE_EQ(registry.gauge("netsim.sim.queue_depth_hwm").value(), 4.0);
}

TEST(Timer, TimerEventsAreCategorized) {
    Simulator sim;
    Timer timer{sim};
    timer.set_after(Duration::millis(1), [] {});
    sim.run();
    const auto& counts = sim.category_counts();
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_STREQ(counts[0].first, "timer");
    EXPECT_EQ(counts[0].second, 1u);
}

TEST(Timer, RearmFromInsideCallback) {
    Simulator sim;
    Timer timer{sim};
    int fires = 0;
    std::function<void()> cb = [&] {
        if (++fires < 3) timer.set_after(Duration::millis(1), cb);
    };
    timer.set_after(Duration::millis(1), cb);
    sim.run();
    EXPECT_EQ(fires, 3);
}

// ---------------------------------------------------------------------------

Datagram make_datagram(std::size_t size, std::uint8_t fill = 0xab) {
    return Datagram(size, fill);
}

TEST(Link, DeliversWithBaseDelay) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(12);
    Link link{sim, config, util::Rng{1}};
    TimePoint delivered_at = TimePoint::never();
    link.set_receiver([&](bytes::ConstByteSpan dg) {
        delivered_at = sim.now();
        EXPECT_EQ(dg.size(), 100u);
    });
    link.send(make_datagram(100));
    sim.run();
    EXPECT_EQ(delivered_at, TimePoint::origin() + Duration::millis(12));
    EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Link, LossDropsDatagrams) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.loss_probability = 0.5;
    Link link{sim, config, util::Rng{2}};
    int received = 0;
    link.set_receiver([&](bytes::ConstByteSpan) { ++received; });
    constexpr int kSent = 4000;
    for (int i = 0; i < kSent; ++i) link.send(make_datagram(10));
    sim.run();
    EXPECT_EQ(link.stats().sent, static_cast<std::uint64_t>(kSent));
    EXPECT_EQ(link.stats().delivered + link.stats().dropped,
              static_cast<std::uint64_t>(kSent));
    EXPECT_NEAR(static_cast<double>(received) / kSent, 0.5, 0.03);
}

TEST(Link, FifoEnforcedUnderJitter) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(5);
    config.jitter_scale = Duration::millis(4);
    config.jitter_sigma = 1.0;
    Link link{sim, config, util::Rng{3}};
    std::vector<std::uint8_t> order;
    link.set_receiver([&](bytes::ConstByteSpan dg) { order.push_back(dg[0]); });
    for (std::uint8_t i = 0; i < 200; ++i) link.send(Datagram(4, i));
    sim.run();
    ASSERT_EQ(order.size(), 200u);
    for (std::uint8_t i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Link, ReorderEventsCanOvertake) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(5);
    config.reorder_probability = 0.3;
    config.reorder_extra_min = Duration::millis(2);
    config.reorder_extra_max = Duration::millis(10);
    Link link{sim, config, util::Rng{4}};
    std::vector<std::uint8_t> order;
    link.set_receiver([&](bytes::ConstByteSpan dg) { order.push_back(dg[0]); });
    for (std::uint8_t i = 0; i < 100; ++i) {
        link.send(Datagram(4, i));
        // Space sends so an extra delay can actually cause overtaking.
        sim.run_until(sim.now() + Duration::millis(1));
    }
    sim.run();
    ASSERT_EQ(order.size(), 100u);
    bool out_of_order = false;
    for (std::size_t i = 1; i < order.size(); ++i) {
        if (order[i] < order[i - 1]) out_of_order = true;
    }
    EXPECT_TRUE(out_of_order);
    EXPECT_GT(link.stats().reordered, 0u);
}

TEST(Link, TapsSeeDeliveredDatagramsOnly) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.loss_probability = 0.5;
    Link link{sim, config, util::Rng{5}};
    int tapped = 0;
    int received = 0;
    link.add_tap([&](TimePoint, bytes::ConstByteSpan) { ++tapped; });
    link.set_receiver([&](bytes::ConstByteSpan) { ++received; });
    for (int i = 0; i < 1000; ++i) link.send(make_datagram(8));
    sim.run();
    EXPECT_EQ(tapped, received);
    EXPECT_LT(tapped, 1000);
}

TEST(Link, CountsDeliveredAndDroppedBytes) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.loss_probability = 0.5;
    Link link{sim, config, util::Rng{42}};
    link.set_receiver([](bytes::ConstByteSpan) {});
    for (int i = 0; i < 200; ++i) link.send(make_datagram(100));
    sim.run();
    const auto& stats = link.stats();
    EXPECT_EQ(stats.delivered_bytes, stats.delivered * 100);
    EXPECT_EQ(stats.dropped_bytes, stats.dropped * 100);
    EXPECT_EQ(stats.delivered_bytes + stats.dropped_bytes, 200u * 100u);

    telemetry::MetricsRegistry registry;
    link.publish_metrics(registry, "netsim.link");
    EXPECT_EQ(registry.counter("netsim.link.sent").value(), 200u);
    EXPECT_EQ(registry.counter("netsim.link.delivered").value(), stats.delivered);
    EXPECT_EQ(registry.counter("netsim.link.delivered_bytes").value(), stats.delivered_bytes);
    EXPECT_EQ(registry.counter("netsim.link.dropped_bytes").value(), stats.dropped_bytes);
}

TEST(Link, BandwidthSerializesBackToBack) {
    Simulator sim;
    LinkConfig config;
    config.base_delay = Duration::millis(1);
    config.bandwidth_bps = 8'000'000;  // 1 byte / us
    Link link{sim, config, util::Rng{6}};
    std::vector<TimePoint> arrivals;
    link.set_receiver([&](bytes::ConstByteSpan) { arrivals.push_back(sim.now()); });
    link.send(make_datagram(1000));  // 1 ms serialization
    link.send(make_datagram(1000));
    sim.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // Second datagram leaves a full serialization slot later.
    EXPECT_EQ((arrivals[1] - arrivals[0]).count_micros(), 1000);
}

TEST(Link, NoReceiverIsSafe) {
    Simulator sim;
    Link link{sim, LinkConfig{}, util::Rng{7}};
    link.send(make_datagram(10));
    sim.run();
    EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Path, BaseRttIsSumOfDirections) {
    Simulator sim;
    util::Rng rng{8};
    LinkConfig forward;
    forward.base_delay = Duration::millis(7);
    LinkConfig back;
    back.base_delay = Duration::millis(9);
    Path path{sim, forward, back, rng};
    EXPECT_EQ(path.base_rtt(), Duration::millis(16));
}

}  // namespace
}  // namespace spinscope::netsim
