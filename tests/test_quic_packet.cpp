// Unit tests for QUIC packet header encoding/decoding and packet-number
// truncation/expansion, including RFC 9000 Appendix A worked examples.

#include <gtest/gtest.h>

#include <vector>

#include "quic/packet.hpp"

namespace spinscope::quic {
namespace {

std::vector<std::uint8_t> payload_of(std::initializer_list<std::uint8_t> bytes) {
    return {bytes};
}

TEST(PacketNumber, LengthSelection) {
    // RFC 9000 A.2: after acking 0xabe8b3, sending 0xac5c02 needs 16 bits.
    EXPECT_EQ(packet_number_length(0xac5c02, 0xabe8b3), 2u);
    // ... and 0xace8fe needs 24 bits (distance * 2 >= 2^16).
    EXPECT_EQ(packet_number_length(0xace8fe, 0xabe8b3), 3u);
    EXPECT_EQ(packet_number_length(0, kInvalidPacketNumber), 1u);
    EXPECT_EQ(packet_number_length(100, kInvalidPacketNumber), 1u);
    EXPECT_EQ(packet_number_length(200, kInvalidPacketNumber), 2u);
}

TEST(PacketNumber, Rfc9000ExpansionExample) {
    // RFC 9000 A.3: largest received 0xa82f30ea, truncated 0x9b32 (2 bytes)
    // expands to 0xa82f9b32.
    EXPECT_EQ(expand_packet_number(0xa82f30ea, 0x9b32, 2), 0xa82f9b32u);
}

TEST(PacketNumber, ExpansionFromNothing) {
    EXPECT_EQ(expand_packet_number(kInvalidPacketNumber, 0, 1), 0u);
    EXPECT_EQ(expand_packet_number(kInvalidPacketNumber, 7, 1), 7u);
}

TEST(PacketNumber, ExpansionWrapsForward) {
    // Largest received 0xff, truncated 0x02 in 1 byte -> 0x102.
    EXPECT_EQ(expand_packet_number(0xff, 0x02, 1), 0x102u);
}

TEST(PacketNumber, RoundTripProperty) {
    // For any (largest_acked, next) pair with the chosen length, truncating
    // then expanding with a receiver that saw up to next-1 must recover next.
    for (PacketNumber largest_acked : {PacketNumber{0}, PacketNumber{100},
                                       PacketNumber{0xabe8b3}, PacketNumber{1} << 40}) {
        for (PacketNumber delta : {PacketNumber{1}, PacketNumber{10}, PacketNumber{1000},
                                   PacketNumber{100000}}) {
            const PacketNumber full = largest_acked + delta;
            const std::size_t length = packet_number_length(full, largest_acked);
            const std::uint64_t mask = length >= 8 ? ~0ULL : ((1ULL << (8 * length)) - 1);
            const std::uint64_t truncated = full & mask;
            EXPECT_EQ(expand_packet_number(full - 1, truncated, length), full)
                << "largest_acked=" << largest_acked << " delta=" << delta;
        }
    }
}

TEST(Packet, ShortHeaderRoundTripWithSpin) {
    for (const bool spin : {false, true}) {
        for (const bool key_phase : {false, true}) {
            PacketHeader header;
            header.type = PacketType::one_rtt;
            header.dcid = ConnectionId::from_u64(0x1122334455667788ULL);
            header.packet_number = 1234;
            header.spin = spin;
            header.key_phase = key_phase;

            std::vector<std::uint8_t> wire;
            const auto payload = payload_of({0x01, 0x01, 0x01});
            encode_packet(wire, header, payload, 1200);

            const auto decoded = decode_packet(wire, 8, 1233);
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(decoded->header.type, PacketType::one_rtt);
            EXPECT_EQ(decoded->header.spin, spin);
            EXPECT_EQ(decoded->header.key_phase, key_phase);
            EXPECT_EQ(decoded->header.packet_number, 1234u);
            EXPECT_EQ(decoded->header.dcid, header.dcid);
            EXPECT_EQ(decoded->payload.size(), 3u);
            EXPECT_EQ(decoded->total_size, wire.size());
        }
    }
}

TEST(Packet, SpinBitIsBit0x20) {
    PacketHeader header;
    header.type = PacketType::one_rtt;
    header.dcid = ConnectionId::from_u64(1);
    header.packet_number = 0;
    header.spin = true;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, {}, kInvalidPacketNumber);
    EXPECT_NE(wire[0] & 0x20, 0);
    header.spin = false;
    wire.clear();
    encode_packet(wire, header, {}, kInvalidPacketNumber);
    EXPECT_EQ(wire[0] & 0x20, 0);
}

TEST(Packet, LongHeaderRoundTrips) {
    for (const auto type : {PacketType::initial, PacketType::handshake, PacketType::zero_rtt}) {
        PacketHeader header;
        header.type = type;
        header.version = Version::v1;
        header.dcid = ConnectionId::from_u64(0xaaaabbbbccccddddULL);
        header.scid = ConnectionId::from_u64(0x1111222233334444ULL);
        header.packet_number = 2;

        std::vector<std::uint8_t> wire;
        const auto payload = payload_of({0x06, 0x00, 0x01, 0x41});
        encode_packet(wire, header, payload, kInvalidPacketNumber);

        const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
        ASSERT_TRUE(decoded.has_value()) << to_cstring(type);
        EXPECT_EQ(decoded->header.type, type);
        EXPECT_EQ(decoded->header.version, Version::v1);
        EXPECT_EQ(decoded->header.dcid, header.dcid);
        EXPECT_EQ(decoded->header.scid, header.scid);
        EXPECT_EQ(decoded->header.packet_number, 2u);
        EXPECT_EQ(decoded->payload.size(), payload.size());
    }
}

TEST(Packet, LongHeaderCarriesAllDraftVersions) {
    for (const auto version : {Version::v1, Version::draft27, Version::draft29,
                               Version::draft32, Version::draft34}) {
        PacketHeader header;
        header.type = PacketType::initial;
        header.version = version;
        header.dcid = ConnectionId::from_u64(1);
        header.scid = ConnectionId::from_u64(2);
        std::vector<std::uint8_t> wire;
        encode_packet(wire, header, payload_of({0x00}), kInvalidPacketNumber);
        const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->header.version, version);
        EXPECT_TRUE(is_known_version(static_cast<std::uint32_t>(version)));
    }
    EXPECT_FALSE(is_known_version(0xdeadbeef));
}

TEST(Packet, DecodeRejectsGarbage) {
    EXPECT_FALSE(decode_packet({}, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> no_fixed_bit{0x00, 0x01, 0x02};
    EXPECT_FALSE(decode_packet(no_fixed_bit, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> truncated_long{0xc0, 0x00};
    EXPECT_FALSE(decode_packet(truncated_long, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> short_too_small{0x40, 0x01};  // dcid missing
    EXPECT_FALSE(decode_packet(short_too_small, 8, kInvalidPacketNumber).has_value());
}

TEST(Packet, LongHeaderLengthFieldBoundsPayload) {
    PacketHeader header;
    header.type = PacketType::handshake;
    header.dcid = ConnectionId::from_u64(1);
    header.scid = ConnectionId::from_u64(2);
    header.packet_number = 0;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, payload_of({0x01, 0x02, 0x03}), kInvalidPacketNumber);
    // Corrupt the length varint upward: decode must fail (runs past end).
    // The length field sits right before pn; find it by re-encoding with a
    // larger claimed length: simplest is truncating the buffer instead.
    wire.pop_back();
    EXPECT_FALSE(decode_packet(wire, 8, kInvalidPacketNumber).has_value());
}

TEST(Packet, PeekShortHeader) {
    PacketHeader header;
    header.type = PacketType::one_rtt;
    header.dcid = ConnectionId::from_u64(9);
    header.spin = true;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, payload_of({0x01}), kInvalidPacketNumber);
    const auto view = peek_short_header(wire);
    ASSERT_TRUE(view.has_value());
    EXPECT_TRUE(view->spin);

    // Long headers yield nullopt.
    PacketHeader long_header;
    long_header.type = PacketType::initial;
    long_header.dcid = ConnectionId::from_u64(1);
    long_header.scid = ConnectionId::from_u64(2);
    std::vector<std::uint8_t> long_wire;
    encode_packet(long_wire, long_header, payload_of({0x00}), kInvalidPacketNumber);
    EXPECT_FALSE(peek_short_header(long_wire).has_value());
    EXPECT_FALSE(peek_short_header({}).has_value());
}

TEST(Packet, VersionNegotiationDetected) {
    std::vector<std::uint8_t> wire{0xc0, 0x00, 0x00, 0x00, 0x00};
    const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header.type, PacketType::version_negotiation);
}

TEST(ConnectionIdT, FromU64AndEquality) {
    const auto a = ConnectionId::from_u64(0x0102030405060708ULL);
    EXPECT_EQ(a.size(), 8u);
    EXPECT_EQ(a.data()[0], 0x01);
    EXPECT_EQ(a.data()[7], 0x08);
    EXPECT_EQ(a, ConnectionId::from_u64(0x0102030405060708ULL));
    EXPECT_FALSE(a == ConnectionId::from_u64(0x0102030405060709ULL));
    ConnectionId empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_FALSE(a == empty);
}

TEST(ConnectionIdT, AssignClampsLength) {
    std::vector<std::uint8_t> long_bytes(25, 0x7f);
    ConnectionId cid;
    cid.assign(long_bytes.data(), long_bytes.size());
    EXPECT_EQ(cid.size(), ConnectionId::kMaxLength);
}

}  // namespace
}  // namespace spinscope::quic
