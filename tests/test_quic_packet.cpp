// Unit tests for QUIC packet header encoding/decoding and packet-number
// truncation/expansion, including RFC 9000 Appendix A worked examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "quic/packet.hpp"
#include "util/rng.hpp"

namespace spinscope::quic {
namespace {

std::vector<std::uint8_t> payload_of(std::initializer_list<std::uint8_t> bytes) {
    return {bytes};
}

TEST(PacketNumber, LengthSelection) {
    // RFC 9000 A.2: after acking 0xabe8b3, sending 0xac5c02 needs 16 bits.
    EXPECT_EQ(packet_number_length(0xac5c02, 0xabe8b3), 2u);
    // ... and 0xace8fe needs 24 bits (distance * 2 >= 2^16).
    EXPECT_EQ(packet_number_length(0xace8fe, 0xabe8b3), 3u);
    EXPECT_EQ(packet_number_length(0, kInvalidPacketNumber), 1u);
    EXPECT_EQ(packet_number_length(100, kInvalidPacketNumber), 1u);
    EXPECT_EQ(packet_number_length(200, kInvalidPacketNumber), 2u);
}

TEST(PacketNumber, Rfc9000ExpansionExample) {
    // RFC 9000 A.3: largest received 0xa82f30ea, truncated 0x9b32 (2 bytes)
    // expands to 0xa82f9b32.
    EXPECT_EQ(expand_packet_number(0xa82f30ea, 0x9b32, 2), 0xa82f9b32u);
}

TEST(PacketNumber, ExpansionFromNothing) {
    EXPECT_EQ(expand_packet_number(kInvalidPacketNumber, 0, 1), 0u);
    EXPECT_EQ(expand_packet_number(kInvalidPacketNumber, 7, 1), 7u);
}

TEST(PacketNumber, ExpansionWrapsForward) {
    // Largest received 0xff, truncated 0x02 in 1 byte -> 0x102.
    EXPECT_EQ(expand_packet_number(0xff, 0x02, 1), 0x102u);
}

TEST(PacketNumber, RoundTripProperty) {
    // For any (largest_acked, next) pair with the chosen length, truncating
    // then expanding with a receiver that saw up to next-1 must recover next.
    for (PacketNumber largest_acked : {PacketNumber{0}, PacketNumber{100},
                                       PacketNumber{0xabe8b3}, PacketNumber{1} << 40}) {
        for (PacketNumber delta : {PacketNumber{1}, PacketNumber{10}, PacketNumber{1000},
                                   PacketNumber{100000}}) {
            const PacketNumber full = largest_acked + delta;
            const std::size_t length = packet_number_length(full, largest_acked);
            const std::uint64_t mask = length >= 8 ? ~0ULL : ((1ULL << (8 * length)) - 1);
            const std::uint64_t truncated = full & mask;
            EXPECT_EQ(expand_packet_number(full - 1, truncated, length), full)
                << "largest_acked=" << largest_acked << " delta=" << delta;
        }
    }
}

TEST(Packet, ShortHeaderRoundTripWithSpin) {
    for (const bool spin : {false, true}) {
        for (const bool key_phase : {false, true}) {
            PacketHeader header;
            header.type = PacketType::one_rtt;
            header.dcid = ConnectionId::from_u64(0x1122334455667788ULL);
            header.packet_number = 1234;
            header.spin = spin;
            header.key_phase = key_phase;

            std::vector<std::uint8_t> wire;
            const auto payload = payload_of({0x01, 0x01, 0x01});
            encode_packet(wire, header, payload, 1200);

            const auto decoded = decode_packet(wire, 8, 1233);
            ASSERT_TRUE(decoded.has_value());
            EXPECT_EQ(decoded->header.type, PacketType::one_rtt);
            EXPECT_EQ(decoded->header.spin, spin);
            EXPECT_EQ(decoded->header.key_phase, key_phase);
            EXPECT_EQ(decoded->header.packet_number, 1234u);
            EXPECT_EQ(decoded->header.dcid, header.dcid);
            EXPECT_EQ(decoded->payload.size(), 3u);
            EXPECT_EQ(decoded->total_size, wire.size());
        }
    }
}

TEST(Packet, SpinBitIsBit0x20) {
    PacketHeader header;
    header.type = PacketType::one_rtt;
    header.dcid = ConnectionId::from_u64(1);
    header.packet_number = 0;
    header.spin = true;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, {}, kInvalidPacketNumber);
    EXPECT_NE(wire[0] & 0x20, 0);
    header.spin = false;
    wire.clear();
    encode_packet(wire, header, {}, kInvalidPacketNumber);
    EXPECT_EQ(wire[0] & 0x20, 0);
}

TEST(Packet, LongHeaderRoundTrips) {
    for (const auto type : {PacketType::initial, PacketType::handshake, PacketType::zero_rtt}) {
        PacketHeader header;
        header.type = type;
        header.version = Version::v1;
        header.dcid = ConnectionId::from_u64(0xaaaabbbbccccddddULL);
        header.scid = ConnectionId::from_u64(0x1111222233334444ULL);
        header.packet_number = 2;

        std::vector<std::uint8_t> wire;
        const auto payload = payload_of({0x06, 0x00, 0x01, 0x41});
        encode_packet(wire, header, payload, kInvalidPacketNumber);

        const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
        ASSERT_TRUE(decoded.has_value()) << to_cstring(type);
        EXPECT_EQ(decoded->header.type, type);
        EXPECT_EQ(decoded->header.version, Version::v1);
        EXPECT_EQ(decoded->header.dcid, header.dcid);
        EXPECT_EQ(decoded->header.scid, header.scid);
        EXPECT_EQ(decoded->header.packet_number, 2u);
        EXPECT_EQ(decoded->payload.size(), payload.size());
    }
}

TEST(Packet, LongHeaderCarriesAllDraftVersions) {
    for (const auto version : {Version::v1, Version::draft27, Version::draft29,
                               Version::draft32, Version::draft34}) {
        PacketHeader header;
        header.type = PacketType::initial;
        header.version = version;
        header.dcid = ConnectionId::from_u64(1);
        header.scid = ConnectionId::from_u64(2);
        std::vector<std::uint8_t> wire;
        encode_packet(wire, header, payload_of({0x00}), kInvalidPacketNumber);
        const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->header.version, version);
        EXPECT_TRUE(is_known_version(static_cast<std::uint32_t>(version)));
    }
    EXPECT_FALSE(is_known_version(0xdeadbeef));
}

TEST(Packet, DecodeRejectsGarbage) {
    EXPECT_FALSE(decode_packet({}, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> no_fixed_bit{0x00, 0x01, 0x02};
    EXPECT_FALSE(decode_packet(no_fixed_bit, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> truncated_long{0xc0, 0x00};
    EXPECT_FALSE(decode_packet(truncated_long, 8, kInvalidPacketNumber).has_value());
    const std::vector<std::uint8_t> short_too_small{0x40, 0x01};  // dcid missing
    EXPECT_FALSE(decode_packet(short_too_small, 8, kInvalidPacketNumber).has_value());
}

TEST(Packet, LongHeaderLengthFieldBoundsPayload) {
    PacketHeader header;
    header.type = PacketType::handshake;
    header.dcid = ConnectionId::from_u64(1);
    header.scid = ConnectionId::from_u64(2);
    header.packet_number = 0;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, payload_of({0x01, 0x02, 0x03}), kInvalidPacketNumber);
    // Corrupt the length varint upward: decode must fail (runs past end).
    // The length field sits right before pn; find it by re-encoding with a
    // larger claimed length: simplest is truncating the buffer instead.
    wire.pop_back();
    EXPECT_FALSE(decode_packet(wire, 8, kInvalidPacketNumber).has_value());
}

TEST(Packet, PeekShortHeader) {
    PacketHeader header;
    header.type = PacketType::one_rtt;
    header.dcid = ConnectionId::from_u64(9);
    header.spin = true;
    std::vector<std::uint8_t> wire;
    encode_packet(wire, header, payload_of({0x01}), kInvalidPacketNumber);
    const auto view = peek_short_header(wire);
    ASSERT_TRUE(view.has_value());
    EXPECT_TRUE(view->spin);

    // Long headers yield nullopt.
    PacketHeader long_header;
    long_header.type = PacketType::initial;
    long_header.dcid = ConnectionId::from_u64(1);
    long_header.scid = ConnectionId::from_u64(2);
    std::vector<std::uint8_t> long_wire;
    encode_packet(long_wire, long_header, payload_of({0x00}), kInvalidPacketNumber);
    EXPECT_FALSE(peek_short_header(long_wire).has_value());
    EXPECT_FALSE(peek_short_header({}).has_value());
}

TEST(Packet, VersionNegotiationDetected) {
    std::vector<std::uint8_t> wire{0xc0, 0x00, 0x00, 0x00, 0x00};
    const auto decoded = decode_packet(wire, 8, kInvalidPacketNumber);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header.type, PacketType::version_negotiation);
}

TEST(ConnectionIdT, FromU64AndEquality) {
    const auto a = ConnectionId::from_u64(0x0102030405060708ULL);
    EXPECT_EQ(a.size(), 8u);
    EXPECT_EQ(a.data()[0], 0x01);
    EXPECT_EQ(a.data()[7], 0x08);
    EXPECT_EQ(a, ConnectionId::from_u64(0x0102030405060708ULL));
    EXPECT_FALSE(a == ConnectionId::from_u64(0x0102030405060709ULL));
    ConnectionId empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_FALSE(a == empty);
}

TEST(ConnectionIdT, AssignClampsLength) {
    std::vector<std::uint8_t> long_bytes(25, 0x7f);
    ConnectionId cid;
    cid.assign(long_bytes.data(), long_bytes.size());
    EXPECT_EQ(cid.size(), ConnectionId::kMaxLength);
}

// --- Property-based sweeps ---------------------------------------------------
//
// Seeded random header round trips. Each case draws every codec input from a
// deterministic stream, so a failure reproduces exactly and the generator
// explores the cross product (cid length × pn distance × spin/vec/key-phase
// × payload size) far beyond the hand-picked cases above.

ConnectionId random_cid(util::Rng& rng, std::size_t max_length) {
    std::vector<std::uint8_t> bytes(rng.uniform_u64(max_length + 1));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    ConnectionId cid;
    cid.assign(bytes.data(), bytes.size());
    return cid;
}

std::vector<std::uint8_t> random_payload(util::Rng& rng, std::size_t max_size) {
    // Never empty: a 1-RTT packet must carry at least one frame byte, and a
    // zero-length long-header payload is a degenerate datagram.
    std::vector<std::uint8_t> payload(1 + rng.uniform_u64(max_size));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    return payload;
}

TEST(PacketProperty, ShortHeaderRoundTripAndWireViewAgree) {
    util::Rng rng{0x51c27b01};
    for (int i = 0; i < 5000; ++i) {
        PacketHeader header;
        header.type = PacketType::one_rtt;
        header.dcid = random_cid(rng, ConnectionId::kMaxLength);
        header.packet_number = rng.uniform_u64(1ULL << 40);
        header.spin = rng.chance(0.5);
        header.key_phase = rng.chance(0.5);
        header.vec = static_cast<std::uint8_t>(rng.uniform_u64(4));
        // A receiver that acked `largest_acked` drives pn truncation; keep
        // the gap small enough for unambiguous expansion (RFC 9000 A.2).
        const std::uint64_t gap = 1 + rng.uniform_u64(1ULL << 14);
        const PacketNumber largest_acked = header.packet_number > gap
                                               ? header.packet_number - gap
                                               : kInvalidPacketNumber;

        std::vector<std::uint8_t> wire;
        const auto payload = random_payload(rng, 64);
        encode_packet(wire, header, payload, largest_acked);

        const PacketNumber largest_received =
            header.packet_number > 0 ? header.packet_number - 1 : kInvalidPacketNumber;
        const auto decoded = decode_packet(wire, header.dcid.size(), largest_received);
        ASSERT_TRUE(decoded.has_value()) << "case " << i;
        ASSERT_EQ(decoded->header.type, PacketType::one_rtt);
        ASSERT_EQ(decoded->header.packet_number, header.packet_number) << "case " << i;
        ASSERT_EQ(decoded->header.dcid, header.dcid);
        ASSERT_EQ(decoded->header.spin, header.spin);
        ASSERT_EQ(decoded->header.key_phase, header.key_phase);
        ASSERT_EQ(decoded->header.vec, header.vec);
        ASSERT_EQ(decoded->total_size, wire.size());
        ASSERT_TRUE(std::equal(decoded->payload.begin(), decoded->payload.end(),
                               payload.begin(), payload.end()));

        // The on-path observer view — what the paper's passive measurement
        // reads — must agree with the endpoint decode on the unprotected bits.
        const auto view = peek_short_header(wire);
        ASSERT_TRUE(view.has_value());
        ASSERT_EQ(view->spin, header.spin);
        ASSERT_EQ(view->vec, header.vec);
        ASSERT_EQ(view->dcid_offset, 1u);

        // Spin is carried in bit 0x20 and nowhere else: flipping it on the
        // wire flips exactly the observer's spin reading.
        std::vector<std::uint8_t> flipped = wire;
        flipped[0] ^= 0x20;
        const auto flipped_view = peek_short_header(flipped);
        ASSERT_TRUE(flipped_view.has_value());
        ASSERT_EQ(flipped_view->spin, !header.spin);
        ASSERT_EQ(flipped_view->vec, header.vec);
    }
}

TEST(PacketProperty, LongHeaderRoundTrip) {
    util::Rng rng{0x51c27b02};
    const PacketType types[] = {PacketType::initial, PacketType::handshake,
                                PacketType::zero_rtt};
    const Version versions[] = {Version::v1, Version::draft27, Version::draft29,
                                Version::draft32, Version::draft34};
    for (int i = 0; i < 5000; ++i) {
        PacketHeader header;
        header.type = types[rng.uniform_u64(3)];
        header.version = versions[rng.uniform_u64(5)];
        header.dcid = random_cid(rng, ConnectionId::kMaxLength);
        header.scid = random_cid(rng, ConnectionId::kMaxLength);
        header.packet_number = rng.uniform_u64(1ULL << 30);
        const std::uint64_t gap = 1 + rng.uniform_u64(1ULL << 14);
        const PacketNumber largest_acked = header.packet_number > gap
                                               ? header.packet_number - gap
                                               : kInvalidPacketNumber;

        std::vector<std::uint8_t> wire;
        const auto payload = random_payload(rng, 64);
        encode_packet(wire, header, payload, largest_acked);

        const PacketNumber largest_received =
            header.packet_number > 0 ? header.packet_number - 1 : kInvalidPacketNumber;
        const auto decoded = decode_packet(wire, 8, largest_received);
        ASSERT_TRUE(decoded.has_value()) << "case " << i;
        ASSERT_EQ(decoded->header.type, header.type);
        ASSERT_EQ(decoded->header.version, header.version);
        ASSERT_EQ(decoded->header.dcid, header.dcid);
        ASSERT_EQ(decoded->header.scid, header.scid);
        ASSERT_EQ(decoded->header.packet_number, header.packet_number) << "case " << i;
        ASSERT_EQ(decoded->payload.size(), payload.size());
        ASSERT_TRUE(std::equal(decoded->payload.begin(), decoded->payload.end(),
                               payload.begin(), payload.end()));
        // Long headers never expose a spin bit to the observer.
        ASSERT_FALSE(peek_short_header(wire).has_value());
    }
}

}  // namespace
}  // namespace spinscope::quic
