// Unit tests for the spin-bit observer: batch measurement in received and
// sorted order, the streaming observer, and the RFC 9312 heuristics.

#include <gtest/gtest.h>

#include <vector>

#include "core/observer.hpp"

namespace spinscope::core {
namespace {

using util::Duration;
using util::TimePoint;

SpinObservation obs(std::int64_t ms, quic::PacketNumber pn, bool spin) {
    return {TimePoint::origin() + Duration::millis(ms), pn, spin};
}

/// A clean square wave: value flips every `period_ms`, one packet per flip.
std::vector<SpinObservation> square_wave(int flips, std::int64_t period_ms) {
    std::vector<SpinObservation> packets;
    bool value = false;
    for (int i = 0; i < flips; ++i) {
        packets.push_back(obs(i * period_ms, static_cast<quic::PacketNumber>(i), value));
        value = !value;
    }
    return packets;
}

TEST(MeasureSpinRtt, EmptyInput) {
    const auto result = measure_spin_rtt({}, PacketOrder::received);
    EXPECT_FALSE(result.spin_candidate());
    EXPECT_FALSE(result.has_samples());
    EXPECT_EQ(result.edge_count, 0u);
    EXPECT_DOUBLE_EQ(result.mean_ms(), 0.0);
    EXPECT_DOUBLE_EQ(result.min_ms(), 0.0);
}

TEST(MeasureSpinRtt, ConstantValueIsNotACandidate) {
    std::vector<SpinObservation> packets;
    for (int i = 0; i < 10; ++i) packets.push_back(obs(i, static_cast<unsigned>(i), true));
    const auto result = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_TRUE(result.saw_one);
    EXPECT_FALSE(result.saw_zero);
    EXPECT_FALSE(result.spin_candidate());
    EXPECT_EQ(result.edge_count, 0u);
}

TEST(MeasureSpinRtt, SquareWaveYieldsPeriod) {
    const auto packets = square_wave(6, 40);
    const auto result = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_TRUE(result.spin_candidate());
    EXPECT_EQ(result.edge_count, 5u);
    ASSERT_EQ(result.samples_ms.size(), 4u);
    for (const double s : result.samples_ms) EXPECT_DOUBLE_EQ(s, 40.0);
    EXPECT_DOUBLE_EQ(result.mean_ms(), 40.0);
    EXPECT_DOUBLE_EQ(result.min_ms(), 40.0);
}

TEST(MeasureSpinRtt, MultiplePacketsPerHalfPeriod) {
    // Several packets with the same value between flips must not create
    // extra edges.
    std::vector<SpinObservation> packets;
    packets.push_back(obs(0, 0, false));
    packets.push_back(obs(5, 1, false));
    packets.push_back(obs(30, 2, true));   // edge 1
    packets.push_back(obs(35, 3, true));
    packets.push_back(obs(60, 4, false));  // edge 2
    const auto result = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_EQ(result.edge_count, 2u);
    ASSERT_EQ(result.samples_ms.size(), 1u);
    EXPECT_DOUBLE_EQ(result.samples_ms[0], 30.0);
}

TEST(MeasureSpinRtt, ReorderingCreatesUltraShortSampleInReceivedOrder) {
    // Paper Fig. 1b: a reordered packet near a spin edge produces a bogus
    // ultra-short spin period in received order...
    std::vector<SpinObservation> packets;
    packets.push_back(obs(0, 0, false));
    packets.push_back(obs(40, 1, true));
    packets.push_back(obs(80, 3, false));  // pn 3 overtook pn 2
    packets.push_back(obs(81, 2, true));   // stale packet: spurious edges
    packets.push_back(obs(82, 4, false));
    const auto received = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_EQ(received.edge_count, 4u);
    EXPECT_LT(received.min_ms(), 2.0);

    // ... which sorting by packet number repairs (§5.1 "S"): pn order is
    // 0(f) 1(t) 2(t) 3(f) 4(f), i.e. two clean edges and one ~40 ms sample.
    const auto sorted = measure_spin_rtt(packets, PacketOrder::sorted);
    EXPECT_EQ(sorted.edge_count, 2u);
    ASSERT_EQ(sorted.samples_ms.size(), 1u);
    EXPECT_GE(sorted.min_ms(), 39.0);
}

TEST(MeasureSpinRtt, SortedDropsDuplicatePacketNumbers) {
    std::vector<SpinObservation> packets;
    packets.push_back(obs(0, 0, false));
    packets.push_back(obs(40, 1, true));
    packets.push_back(obs(41, 1, true));  // duplicate (retransmission)
    packets.push_back(obs(80, 2, false));
    const auto sorted = measure_spin_rtt(packets, PacketOrder::sorted);
    EXPECT_EQ(sorted.edge_count, 2u);
    ASSERT_EQ(sorted.samples_ms.size(), 1u);
    EXPECT_DOUBLE_EQ(sorted.samples_ms[0], 40.0);
}

TEST(MeasureSpinRtt, SingleEdgeYieldsNoSample) {
    std::vector<SpinObservation> packets;
    packets.push_back(obs(0, 0, false));
    packets.push_back(obs(30, 1, true));
    const auto result = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_TRUE(result.spin_candidate());
    EXPECT_EQ(result.edge_count, 1u);
    EXPECT_FALSE(result.has_samples());
}

TEST(StreamingObserver, MatchesBatchReceivedOrder) {
    const auto packets = square_wave(8, 25);
    SpinEdgeObserver streaming;
    for (const auto& p : packets) streaming.on_packet(p);
    const auto batch = measure_spin_rtt(packets, PacketOrder::received);
    EXPECT_EQ(streaming.result().samples_ms, batch.samples_ms);
    EXPECT_EQ(streaming.result().edge_count, batch.edge_count);
    EXPECT_EQ(streaming.rejected_samples(), 0u);
}

TEST(StreamingObserver, StaticFloorRejectsShortSamples) {
    ObserverConfig config;
    config.min_plausible_rtt = Duration::millis(5);
    SpinEdgeObserver observer{config};
    observer.on_packet(obs(0, 0, false));
    observer.on_packet(obs(40, 1, true));
    observer.on_packet(obs(41, 2, false));  // 1 ms sample -> rejected
    observer.on_packet(obs(80, 3, true));
    EXPECT_EQ(observer.rejected_samples(), 1u);
    ASSERT_EQ(observer.result().samples_ms.size(), 1u);
    EXPECT_DOUBLE_EQ(observer.result().samples_ms[0], 39.0);
}

TEST(StreamingObserver, DynamicRatioRejectsOutliers) {
    ObserverConfig config;
    config.dynamic_reject_ratio = 0.25;
    SpinEdgeObserver observer{config};
    // Establish a ~40 ms smoothed estimate, then present a 2 ms sample.
    bool value = false;
    std::int64_t t = 0;
    quic::PacketNumber pn = 0;
    for (int i = 0; i < 6; ++i) {
        observer.on_packet(obs(t, pn++, value));
        value = !value;
        t += 40;
    }
    observer.on_packet(obs(t - 40 + 2, pn++, value));  // 2 ms after last edge
    EXPECT_EQ(observer.rejected_samples(), 1u);
    ASSERT_TRUE(observer.smoothed_ms().has_value());
    EXPECT_NEAR(*observer.smoothed_ms(), 40.0, 1.0);
}

TEST(StreamingObserver, PacketNumberFilterSuppressesStaleEdges) {
    ObserverConfig config;
    config.packet_number_filter = true;
    SpinEdgeObserver observer{config};
    observer.on_packet(obs(0, 0, false));
    observer.on_packet(obs(40, 1, true));
    observer.on_packet(obs(80, 3, false));
    observer.on_packet(obs(81, 2, true));   // stale pn: ignored as edge
    observer.on_packet(obs(120, 4, true));  // consistent with pn 2? no: current is false
    // Edges: pn1 (0->1), pn3 (1->0), pn4 (0->1). The stale pn2 is skipped.
    EXPECT_EQ(observer.result().edge_count, 3u);
    ASSERT_EQ(observer.result().samples_ms.size(), 2u);
    EXPECT_DOUBLE_EQ(observer.result().samples_ms[0], 40.0);
    EXPECT_DOUBLE_EQ(observer.result().samples_ms[1], 40.0);
}

TEST(StreamingObserver, WithoutPnFilterStaleEdgeCorruptsSamples) {
    SpinEdgeObserver observer;  // defaults: no filtering
    observer.on_packet(obs(0, 0, false));
    observer.on_packet(obs(40, 1, true));
    observer.on_packet(obs(80, 3, false));
    observer.on_packet(obs(81, 2, true));
    observer.on_packet(obs(82, 4, false));
    EXPECT_EQ(observer.result().edge_count, 4u);
    EXPECT_LT(observer.result().min_ms(), 2.0);
}

// Property: for a clean square wave of any period, every sample equals the
// period regardless of heuristics.
class SquareWavePeriod : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SquareWavePeriod, AllSamplesEqualPeriod) {
    const std::int64_t period = GetParam();
    const auto packets = square_wave(10, period);
    for (const auto order : {PacketOrder::received, PacketOrder::sorted}) {
        const auto result = measure_spin_rtt(packets, order);
        ASSERT_EQ(result.samples_ms.size(), 8u);
        for (const double s : result.samples_ms) {
            EXPECT_DOUBLE_EQ(s, static_cast<double>(period));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Periods, SquareWavePeriod, ::testing::Values(1, 10, 25, 100, 400));

}  // namespace
}  // namespace spinscope::core
