#!/usr/bin/env python3
"""Guard the committed perf trajectory (BENCH_*.json) against regressions.

Each BENCH_*.json at the repo root is a spinscope-bench-trajectory-v1
snapshot (see bench/trajectory.hpp) with four guarded metrics:

  domains_per_sec         higher is better
  peak_rss_bytes          lower is better
  allocs_per_domain       lower is better (exact-ish: deterministic workload)
  alloc_bytes_per_domain  lower is better (exact-ish: deterministic workload)

Usage:
  bench_check.py BASELINE CANDIDATE [BASELINE CANDIDATE ...]
      Compare each candidate measurement against its committed baseline;
      exit non-zero if any metric regresses past its tolerance.
  bench_check.py --self-test
      Verify the checker itself: an injected synthetic regression must be
      detected, an identical candidate must pass.

Wall-clock throughput and RSS get wide tolerances (CI machines are noisy);
the allocation counters are per-domain averages of a deterministic workload,
so they get tight ones.
"""

import json
import sys

SCHEMA = "spinscope-bench-trajectory-v1"
OBSERVER_SCHEMA = "spinscope-bench-observer-v1"
SCALE_SCHEMA = "spinscope-bench-scale-v1"

# metric -> (higher_is_better, relative tolerance)
POLICY = {
    "domains_per_sec": (True, 0.40),
    "peak_rss_bytes": (False, 0.40),
    "allocs_per_domain": (False, 0.10),
    "alloc_bytes_per_domain": (False, 0.10),
    # Multi-process map pass (--procs, DESIGN.md §13): high-water worker RSS
    # reported over the heartbeat channel. Wall-clock noisy, so wide.
    "peak_worker_rss_bytes": (False, 0.50),
}
# Allocation metrics are meaningless without the interposer on both sides.
ALLOC_METRICS = {"allocs_per_domain", "alloc_bytes_per_domain"}
# Metrics only multi-process runs produce: silently skipped when the
# committed baseline predates them or was measured without --procs.
OPTIONAL_METRICS = {"peak_worker_rss_bytes"}

# Constrained-observer accuracy table (BENCH_observer.json, DESIGN.md §14):
# metric -> (higher_is_better, relative tolerance, absolute slack).
# Accuracy metrics are deterministic-ish (same seed, same stream; only libm
# rounding can drift), so they get tight relative tolerances plus a small
# absolute slack that keeps near-zero baselines from amplifying noise.
# Wall throughput is CI-machine noise and gets the usual wide band.
OBSERVER_POLICY = {
    "coverage": (True, 0.05, 0.01),
    "within_25ms_share": (True, 0.05, 0.01),
    "mean_abs_err_ms": (False, 0.25, 0.05),
    "packets_per_sec": (True, 0.50, 0.0),
}

# Scale-sweep flatness gate (spinscope-bench-scale-v1, DESIGN.md §15): the
# sweep measures one campaign per population scale inside one process, fewest
# domains first, so process peak RSS is monotone across rows. Out-of-core
# streaming means the biggest-universe row's peak RSS must stay within this
# factor of the smallest's — campaign state growing with the domain count
# shows up as a blown ratio long before any baseline comparison would drift.
# The measured ratio across a 10x domain range is ~1.02; 1.5 leaves room for
# allocator noise while still catching even a bytes-per-domain-scale leak.
SCALE_FLATNESS_LIMIT = 1.5


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema == SCHEMA:
        if "metrics" not in doc or not isinstance(doc["metrics"], dict):
            raise ValueError(f"{path}: missing metrics object")
    elif schema == OBSERVER_SCHEMA:
        if "rows" not in doc or not isinstance(doc["rows"], dict):
            raise ValueError(f"{path}: missing rows object")
    elif schema == SCALE_SCHEMA:
        if "rows" not in doc or not isinstance(doc["rows"], list):
            raise ValueError(f"{path}: missing rows array")
    else:
        raise ValueError(
            f"{path}: not a {SCHEMA}, {OBSERVER_SCHEMA} or {SCALE_SCHEMA} document"
        )
    return doc


def compare_observer(baseline, candidate, base_name="baseline", cand_name="candidate"):
    """Row-keyed accuracy table comparison. Returns failure strings."""
    failures = []
    cand_rows = candidate.get("rows", {})
    for row_id, base_row in baseline.get("rows", {}).items():
        cand_row = cand_rows.get(row_id)
        if cand_row is None:
            failures.append(f"{row_id}: row missing from candidate")
            continue
        base_metrics = base_row.get("metrics", {})
        cand_metrics = cand_row.get("metrics", {})
        for metric, (higher_better, rel, slack) in OBSERVER_POLICY.items():
            base = base_metrics.get(metric)
            cand = cand_metrics.get(metric)
            if base is None and cand is None:
                continue
            if base is None or cand is None:
                failures.append(f"{row_id}/{metric}: missing from snapshot")
                continue
            if base <= 0:
                continue  # nothing committed to guard against
            if higher_better:
                ok = cand >= base * (1.0 - rel) - slack
                direction = "worse (lower)"
            else:
                ok = cand <= base * (1.0 + rel) + slack
                direction = "worse (higher)"
            status = "ok" if ok else "REGRESSION"
            print(
                f"  {row_id}/{metric}: {base_name} {base:.6g} -> {cand_name} "
                f"{cand:.6g} (tolerance {rel:.0%} + {slack:g}) [{status}]"
            )
            if not ok:
                failures.append(
                    f"{row_id}/{metric}: {cand:.6g} vs baseline {base:.6g} is "
                    f"{direction} than the {rel:.0%} + {slack:g} tolerance"
                )
    return failures


def compare_scale(baseline, candidate, base_name="baseline", cand_name="candidate"):
    """Scale-sweep comparison: per-row metrics vs the committed row of the
    same scale, plus the intrinsic peak-RSS flatness gate on the candidate
    sweep itself. Returns failure strings."""
    failures = []
    cand_rows = candidate.get("rows", [])
    base_rows = baseline.get("rows", [])

    # Flatness: biggest universe vs smallest, on the fresh measurement.
    measured = [
        r for r in cand_rows
        if r.get("domains", 0) > 0 and r.get("metrics", {}).get("peak_rss_bytes", 0) > 0
    ]
    if len(measured) < 2:
        failures.append("scale sweep: candidate needs >= 2 measured rows")
    else:
        smallest = min(measured, key=lambda r: r["domains"])
        biggest = max(measured, key=lambda r: r["domains"])
        ratio = (
            biggest["metrics"]["peak_rss_bytes"] / smallest["metrics"]["peak_rss_bytes"]
        )
        ok = ratio <= SCALE_FLATNESS_LIMIT
        status = "ok" if ok else "REGRESSION"
        print(
            f"  scale-sweep flatness: peak RSS {smallest['metrics']['peak_rss_bytes']} "
            f"({smallest['domains']} domains) -> {biggest['metrics']['peak_rss_bytes']} "
            f"({biggest['domains']} domains), ratio {ratio:.2f} "
            f"(limit {SCALE_FLATNESS_LIMIT}) [{status}]"
        )
        if not ok:
            failures.append(
                f"scale sweep: peak RSS grew {ratio:.2f}x from {smallest['domains']} to "
                f"{biggest['domains']} domains — campaign state is no longer flat in "
                f"the domain count (limit {SCALE_FLATNESS_LIMIT}x)"
            )

    # Per-row trajectory comparison, keyed by scale.
    cand_by_scale = {r.get("scale"): r for r in cand_rows}
    for base_row in base_rows:
        scale = base_row.get("scale")
        cand_row = cand_by_scale.get(scale)
        if cand_row is None:
            failures.append(f"scale sweep: row for scale {scale} missing from candidate")
            continue
        failures += compare_trajectory(
            base_row, cand_row, base_name, cand_name, label=f"scale:{scale:g}"
        )
    return failures


def compare(baseline, candidate, base_name="baseline", cand_name="candidate"):
    """Returns a list of failure strings (empty = pass)."""
    if baseline.get("schema") != candidate.get("schema"):
        return [
            f"schema mismatch: {baseline.get('schema')} vs {candidate.get('schema')}"
        ]
    if baseline.get("schema") == OBSERVER_SCHEMA:
        return compare_observer(baseline, candidate, base_name, cand_name)
    if baseline.get("schema") == SCALE_SCHEMA:
        return compare_scale(baseline, candidate, base_name, cand_name)
    return compare_trajectory(baseline, candidate, base_name, cand_name)


def compare_trajectory(baseline, candidate, base_name="baseline",
                       cand_name="candidate", label=None):
    """Single trajectory-row comparison (also reused per scale-sweep row)."""
    failures = []
    bench = label if label is not None else baseline.get("bench", "?")
    alloc_ok = baseline.get("alloc_probe", 0) and candidate.get("alloc_probe", 0)
    for metric, (higher_better, tolerance) in POLICY.items():
        if metric in ALLOC_METRICS and not alloc_ok:
            continue
        base = baseline["metrics"].get(metric)
        cand = candidate["metrics"].get(metric)
        if metric in OPTIONAL_METRICS and (base is None or cand is None):
            continue
        if base is None or cand is None:
            failures.append(f"{bench}/{metric}: missing from snapshot")
            continue
        if base <= 0:
            continue  # nothing committed to guard against
        ratio = cand / base
        if higher_better:
            ok = ratio >= 1.0 - tolerance
            direction = "slower"
        else:
            ok = ratio <= 1.0 + tolerance
            direction = "larger"
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {bench}/{metric}: {base_name} {base:.6g} -> {cand_name} "
            f"{cand:.6g} ({ratio:.1%} of baseline, tolerance {tolerance:.0%}) "
            f"[{status}]"
        )
        if not ok:
            failures.append(
                f"{bench}/{metric}: {ratio:.2f}x of baseline is {direction} than "
                f"the {tolerance:.0%} tolerance"
            )
    return failures


def self_test():
    baseline = {
        "schema": SCHEMA,
        "bench": "selftest",
        "alloc_probe": 1,
        "metrics": {
            "domains_per_sec": 1000.0,
            "peak_rss_bytes": 100 * 1024 * 1024,
            "allocs_per_domain": 200.0,
            "alloc_bytes_per_domain": 50000.0,
            "peak_worker_rss_bytes": 80 * 1024 * 1024,
        },
    }
    identical = json.loads(json.dumps(baseline))
    print("self-test: identical candidate must pass")
    if compare(baseline, identical):
        print("self-test FAILED: identical candidate was flagged")
        return 1

    print("self-test: injected regressions must each be detected")
    injected = {
        "domains_per_sec": 1000.0 * 0.5,          # 2x slowdown
        "peak_rss_bytes": 100 * 1024 * 1024 * 2,  # 2x footprint
        "allocs_per_domain": 200.0 * 1.5,         # +50% allocations
        "alloc_bytes_per_domain": 50000.0 * 1.5,  # +50% bytes
        "peak_worker_rss_bytes": 80 * 1024 * 1024 * 2,  # 2x worker footprint
    }
    for metric, bad in injected.items():
        regressed = json.loads(json.dumps(baseline))
        regressed["metrics"][metric] = bad
        if not compare(baseline, regressed):
            print(f"self-test FAILED: regression in {metric} was not detected")
            return 1

    print("self-test: optional metrics absent from the baseline must be skipped")
    legacy = json.loads(json.dumps(baseline))
    del legacy["metrics"]["peak_worker_rss_bytes"]
    bloated = json.loads(json.dumps(baseline))
    bloated["metrics"]["peak_worker_rss_bytes"] = 10 * 80 * 1024 * 1024
    if compare(legacy, bloated):
        print("self-test FAILED: optional metric flagged without a baseline")
        return 1

    print("self-test: observer-table regressions must be detected")
    obs_base = {
        "schema": OBSERVER_SCHEMA,
        "rows": {
            "slots16_lru": {
                "metrics": {
                    "coverage": 0.94,
                    "mean_abs_err_ms": 0.25,
                    "within_25ms_share": 0.999,
                    "packets_per_sec": 1e7,
                }
            }
        },
    }
    obs_same = json.loads(json.dumps(obs_base))
    if compare(obs_base, obs_same):
        print("self-test FAILED: identical observer table was flagged")
        return 1
    obs_bad = {
        "coverage": 0.94 * 0.5,          # half the flows lost
        "mean_abs_err_ms": 0.25 * 2.0,   # 2x the error (past rel+slack)
        "within_25ms_share": 0.999 * 0.8,
        "packets_per_sec": 1e7 * 0.3,
    }
    for metric, bad in obs_bad.items():
        regressed = json.loads(json.dumps(obs_base))
        regressed["rows"]["slots16_lru"]["metrics"][metric] = bad
        if not compare(obs_base, regressed):
            print(f"self-test FAILED: observer regression in {metric} not detected")
            return 1
    dropped = json.loads(json.dumps(obs_base))
    dropped["rows"] = {}
    if not compare(obs_base, dropped):
        print("self-test FAILED: missing observer row not detected")
        return 1
    print("self-test: near-zero observer baselines must stay inside the slack")
    tiny = json.loads(json.dumps(obs_base))
    tiny["rows"]["slots16_lru"]["metrics"]["mean_abs_err_ms"] = 0.001
    wobble = json.loads(json.dumps(tiny))
    wobble["rows"]["slots16_lru"]["metrics"]["mean_abs_err_ms"] = 0.04  # < slack
    if compare(tiny, wobble):
        print("self-test FAILED: sub-slack error wobble was flagged")
        return 1

    print("self-test: scale-sweep flatness and per-row regressions must be detected")
    scale_base = {
        "schema": SCALE_SCHEMA,
        "rows": [
            {
                "bench": "scale", "scale": 20000.0, "domains": 2173,
                "alloc_probe": 1,
                "metrics": {"domains_per_sec": 900.0, "peak_rss_bytes": 5000000,
                            "allocs_per_domain": 210.0,
                            "alloc_bytes_per_domain": 52000.0},
            },
            {
                "bench": "scale", "scale": 2000.0, "domains": 21730,
                "alloc_probe": 1,
                "metrics": {"domains_per_sec": 1100.0, "peak_rss_bytes": 5100000,
                            "allocs_per_domain": 190.0,
                            "alloc_bytes_per_domain": 48000.0},
            },
        ],
    }
    scale_same = json.loads(json.dumps(scale_base))
    if compare(scale_base, scale_same):
        print("self-test FAILED: identical scale sweep was flagged")
        return 1
    leaky = json.loads(json.dumps(scale_base))
    leaky["rows"][1]["metrics"]["peak_rss_bytes"] = 3 * 5000000  # grows with domains
    if not compare(scale_base, leaky):
        print("self-test FAILED: non-flat peak RSS across scales not detected")
        return 1
    slow = json.loads(json.dumps(scale_base))
    slow["rows"][0]["metrics"]["domains_per_sec"] = 900.0 * 0.5
    if not compare(scale_base, slow):
        print("self-test FAILED: per-scale throughput regression not detected")
        return 1
    truncated = json.loads(json.dumps(scale_base))
    truncated["rows"] = truncated["rows"][:1]
    if not compare(scale_base, truncated):
        print("self-test FAILED: dropped scale row not detected")
        return 1

    print("self-test: alloc metrics must be skipped without the interposer")
    unprobed = json.loads(json.dumps(baseline))
    unprobed["alloc_probe"] = 0
    unprobed["metrics"]["allocs_per_domain"] = 10 * baseline["metrics"]["allocs_per_domain"]
    if compare(baseline, unprobed):
        print("self-test FAILED: alloc metric flagged despite missing probe")
        return 1

    print("self-test OK")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        return self_test()
    if not args or len(args) % 2 != 0 or any(a.startswith("--") for a in args):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = []
    for i in range(0, len(args), 2):
        base_path, cand_path = args[i], args[i + 1]
        print(f"bench_check: {cand_path} vs committed {base_path}")
        try:
            failures += compare(load(base_path), load(cand_path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            failures.append(str(e))
            print(f"  error: {e}")

    if failures:
        print(f"\nbench_check: {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        print("(intentional? regenerate baselines with: REGEN=1 scripts/ci.sh bench)")
        return 1
    print("\nbench_check: perf trajectory holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
