#!/usr/bin/env python3
"""Guard the committed perf trajectory (BENCH_*.json) against regressions.

Each BENCH_*.json at the repo root is a spinscope-bench-trajectory-v1
snapshot (see bench/trajectory.hpp) with four guarded metrics:

  domains_per_sec         higher is better
  peak_rss_bytes          lower is better
  allocs_per_domain       lower is better (exact-ish: deterministic workload)
  alloc_bytes_per_domain  lower is better (exact-ish: deterministic workload)

Usage:
  bench_check.py BASELINE CANDIDATE [BASELINE CANDIDATE ...]
      Compare each candidate measurement against its committed baseline;
      exit non-zero if any metric regresses past its tolerance.
  bench_check.py --self-test
      Verify the checker itself: an injected synthetic regression must be
      detected, an identical candidate must pass.

Wall-clock throughput and RSS get wide tolerances (CI machines are noisy);
the allocation counters are per-domain averages of a deterministic workload,
so they get tight ones.
"""

import json
import sys

SCHEMA = "spinscope-bench-trajectory-v1"

# metric -> (higher_is_better, relative tolerance)
POLICY = {
    "domains_per_sec": (True, 0.40),
    "peak_rss_bytes": (False, 0.40),
    "allocs_per_domain": (False, 0.10),
    "alloc_bytes_per_domain": (False, 0.10),
    # Multi-process map pass (--procs, DESIGN.md §13): high-water worker RSS
    # reported over the heartbeat channel. Wall-clock noisy, so wide.
    "peak_worker_rss_bytes": (False, 0.50),
}
# Allocation metrics are meaningless without the interposer on both sides.
ALLOC_METRICS = {"allocs_per_domain", "alloc_bytes_per_domain"}
# Metrics only multi-process runs produce: silently skipped when the
# committed baseline predates them or was measured without --procs.
OPTIONAL_METRICS = {"peak_worker_rss_bytes"}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} document")
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path}: missing metrics object")
    return doc


def compare(baseline, candidate, base_name="baseline", cand_name="candidate"):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    bench = baseline.get("bench", "?")
    alloc_ok = baseline.get("alloc_probe", 0) and candidate.get("alloc_probe", 0)
    for metric, (higher_better, tolerance) in POLICY.items():
        if metric in ALLOC_METRICS and not alloc_ok:
            continue
        base = baseline["metrics"].get(metric)
        cand = candidate["metrics"].get(metric)
        if metric in OPTIONAL_METRICS and (base is None or cand is None):
            continue
        if base is None or cand is None:
            failures.append(f"{bench}/{metric}: missing from snapshot")
            continue
        if base <= 0:
            continue  # nothing committed to guard against
        ratio = cand / base
        if higher_better:
            ok = ratio >= 1.0 - tolerance
            direction = "slower"
        else:
            ok = ratio <= 1.0 + tolerance
            direction = "larger"
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {bench}/{metric}: {base_name} {base:.6g} -> {cand_name} "
            f"{cand:.6g} ({ratio:.1%} of baseline, tolerance {tolerance:.0%}) "
            f"[{status}]"
        )
        if not ok:
            failures.append(
                f"{bench}/{metric}: {ratio:.2f}x of baseline is {direction} than "
                f"the {tolerance:.0%} tolerance"
            )
    return failures


def self_test():
    baseline = {
        "schema": SCHEMA,
        "bench": "selftest",
        "alloc_probe": 1,
        "metrics": {
            "domains_per_sec": 1000.0,
            "peak_rss_bytes": 100 * 1024 * 1024,
            "allocs_per_domain": 200.0,
            "alloc_bytes_per_domain": 50000.0,
            "peak_worker_rss_bytes": 80 * 1024 * 1024,
        },
    }
    identical = json.loads(json.dumps(baseline))
    print("self-test: identical candidate must pass")
    if compare(baseline, identical):
        print("self-test FAILED: identical candidate was flagged")
        return 1

    print("self-test: injected regressions must each be detected")
    injected = {
        "domains_per_sec": 1000.0 * 0.5,          # 2x slowdown
        "peak_rss_bytes": 100 * 1024 * 1024 * 2,  # 2x footprint
        "allocs_per_domain": 200.0 * 1.5,         # +50% allocations
        "alloc_bytes_per_domain": 50000.0 * 1.5,  # +50% bytes
        "peak_worker_rss_bytes": 80 * 1024 * 1024 * 2,  # 2x worker footprint
    }
    for metric, bad in injected.items():
        regressed = json.loads(json.dumps(baseline))
        regressed["metrics"][metric] = bad
        if not compare(baseline, regressed):
            print(f"self-test FAILED: regression in {metric} was not detected")
            return 1

    print("self-test: optional metrics absent from the baseline must be skipped")
    legacy = json.loads(json.dumps(baseline))
    del legacy["metrics"]["peak_worker_rss_bytes"]
    bloated = json.loads(json.dumps(baseline))
    bloated["metrics"]["peak_worker_rss_bytes"] = 10 * 80 * 1024 * 1024
    if compare(legacy, bloated):
        print("self-test FAILED: optional metric flagged without a baseline")
        return 1

    print("self-test: alloc metrics must be skipped without the interposer")
    unprobed = json.loads(json.dumps(baseline))
    unprobed["alloc_probe"] = 0
    unprobed["metrics"]["allocs_per_domain"] = 10 * baseline["metrics"]["allocs_per_domain"]
    if compare(baseline, unprobed):
        print("self-test FAILED: alloc metric flagged despite missing probe")
        return 1

    print("self-test OK")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        return self_test()
    if not args or len(args) % 2 != 0 or any(a.startswith("--") for a in args):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = []
    for i in range(0, len(args), 2):
        base_path, cand_path = args[i], args[i + 1]
        print(f"bench_check: {cand_path} vs committed {base_path}")
        try:
            failures += compare(load(base_path), load(cand_path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            failures.append(str(e))
            print(f"  error: {e}")

    if failures:
        print(f"\nbench_check: {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        print("(intentional? regenerate baselines with: REGEN=1 scripts/ci.sh bench)")
        return 1
    print("\nbench_check: perf trajectory holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
