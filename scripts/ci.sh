#!/usr/bin/env bash
# spinscope CI driver: configure + build + ctest per lane, one build tree per
# lane (see CMakePresets.json).
#
#   scripts/ci.sh              # default lane (RelWithDebInfo + full ctest)
#   scripts/ci.sh sanitize     # ASan+UBSan lane
#   scripts/ci.sh tsan         # ThreadSanitizer lane (parallel determinism)
#   scripts/ci.sh lint         # clang-tidy lane (compile-only; needs clang-tidy)
#   scripts/ci.sh all          # default + sanitize + tsan (+ lint if available)
#
# Exit status is non-zero as soon as any configure, build or test step of any
# requested lane fails. Lanes always run from a preset-owned build tree, so a
# stale manual configure can never leak flags into CI results.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_lane() {
    local lane="$1"
    echo "=== lane: ${lane} ==="
    cmake --preset "${lane}" >/dev/null
    cmake --build --preset "${lane}" -j "${JOBS}"
    if [ "${lane}" != "lint" ]; then
        ctest --preset "${lane}" -j "${JOBS}"
    fi
    echo "=== lane ${lane}: OK ==="
}

lint_available() { command -v clang-tidy >/dev/null 2>&1; }

main() {
    local lanes=("${@:-default}")
    if [ "${1:-}" = "all" ]; then
        lanes=(default sanitize tsan)
        if lint_available; then
            lanes+=(lint)
        else
            echo "note: clang-tidy not on PATH, skipping lint lane" >&2
        fi
    fi
    for lane in "${lanes[@]}"; do
        case "${lane}" in
            default|sanitize|tsan) run_lane "${lane}" ;;
            lint)
                if lint_available; then
                    run_lane lint
                else
                    echo "error: lint lane requires clang-tidy on PATH" >&2
                    exit 2
                fi
                ;;
            *)
                echo "error: unknown lane '${lane}' (default|sanitize|tsan|lint|all)" >&2
                exit 2
                ;;
        esac
    done
}

main "$@"
