#!/usr/bin/env bash
# spinscope CI driver: configure + build + ctest per lane, one build tree per
# lane (see CMakePresets.json).
#
#   scripts/ci.sh              # default lane (RelWithDebInfo + full ctest)
#   scripts/ci.sh sanitize     # ASan+UBSan lane
#   scripts/ci.sh tsan         # ThreadSanitizer lane (parallel determinism)
#   scripts/ci.sh lint         # clang-tidy lane (compile-only; needs clang-tidy)
#   scripts/ci.sh bench        # perf-trajectory lane: measure BENCH_*.json and
#                              # fail on regression vs the committed baselines
#                              # (REGEN=1 scripts/ci.sh bench re-baselines)
#   scripts/ci.sh chaos        # crash-isolation lane: the multi-process kill
#                              # sweep (SIGKILL workers at every lifecycle
#                              # point), journal/lease and proc-plumbing suites
#   scripts/ci.sh diskchaos    # lying-disk lane: the full storage-fault-plan
#                              # x injection-point sweep (ENOSPC, EIO, short
#                              # writes, power loss, bit flips — incl. FaultIo
#                              # under --procs=2), the storage-seam unit suite
#                              # and the journal scrub corpus
#   scripts/ci.sh rss          # out-of-core lane: a mid-scale streaming
#                              # campaign under a hard RLIMIT_AS ceiling — an
#                              # accidental O(domains) allocation fails loudly
#   scripts/ci.sh all          # default + sanitize + tsan (+ lint if available)
#
# Exit status is non-zero as soon as any configure, build or test step of any
# requested lane fails. Lanes always run from a preset-owned build tree, so a
# stale manual configure can never leak flags into CI results.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_lane() {
    local lane="$1"
    echo "=== lane: ${lane} ==="
    cmake --preset "${lane}" >/dev/null
    cmake --build --preset "${lane}" -j "${JOBS}"
    if [ "${lane}" != "lint" ]; then
        ctest --preset "${lane}" -j "${JOBS}"
    fi
    echo "=== lane ${lane}: OK ==="
}

lint_available() { command -v clang-tidy >/dev/null 2>&1; }

# Perf-trajectory lane: rebuild the release tree, re-measure the committed
# BENCH_*.json snapshots (packet-path microbench + a small Table 1 sweep) and
# gate on scripts/bench_check.py. REGEN=1 refreshes the repo-root baselines
# instead of comparing (commit the updated files with the change that earned
# them).
run_bench_lane() {
    echo "=== lane: bench ==="
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${JOBS}" \
        --target bench_packet_path bench_table1 bench_observer
    python3 scripts/bench_check.py --self-test

    local out="build/bench"
    ./build/bench/bench_packet_path \
        --trajectory="${out}/BENCH_packet_path.json" --trajectory_count=192
    # --procs=2 routes the Table 1 sweep through the multi-process map pass
    # (fork + shared journal + reduce), so the committed BENCH_scale.json also
    # pins the crash-isolated path's throughput and worker footprint. The
    # --scales sweep spans a 10x domain range; bench_check.py gates both the
    # per-row metrics and the flatness of peak RSS across the rows (the
    # out-of-core guarantee of DESIGN.md §15).
    ./build/bench/bench_table1 --scales=20000,6000,2000 --telemetry=off --procs=2 \
        --trajectory="${out}/BENCH_scale.json" >/dev/null
    # Constrained-observer accuracy table (DESIGN.md §14): campaign replay +
    # the synthetic flow sweep incl. the 1M-flow/64K-slot roadmap point.
    # Accuracy tolerances are tight, wall throughput wide (bench_check.py).
    ./build/bench/bench_observer --scale=20000 \
        --trajectory="${out}/BENCH_observer.json" >/dev/null

    if [ "${REGEN:-0}" = "1" ]; then
        cp "${out}/BENCH_packet_path.json" BENCH_packet_path.json
        cp "${out}/BENCH_scale.json" BENCH_scale.json
        cp "${out}/BENCH_observer.json" BENCH_observer.json
        echo "re-baselined BENCH_packet_path.json, BENCH_scale.json and BENCH_observer.json"
    else
        python3 scripts/bench_check.py \
            BENCH_packet_path.json "${out}/BENCH_packet_path.json" \
            BENCH_scale.json "${out}/BENCH_scale.json" \
            BENCH_observer.json "${out}/BENCH_observer.json"
    fi
    echo "=== lane bench: OK ==="
}

# Chaos lane: the crash-isolation suites on their own — the kill sweep
# (SIGKILL at every worker lifecycle point x {1,2,4} procs, reduced output
# must stay byte-identical), hang/poison/RSS supervision, journal + lease
# invariants and the process plumbing underneath. All of this also runs in
# the default lane's ctest; this lane is the focused, fast repro loop.
run_chaos_lane() {
    echo "=== lane: chaos ==="
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${JOBS}" \
        --target test_scanner_procpool test_scanner_journal test_util_misc
    ./build/tests/test_scanner_procpool
    ./build/tests/test_scanner_journal
    ./build/tests/test_util_misc
    echo "=== lane chaos: OK ==="
}

# Disk-chaos lane: campaigns on a lying disk (DESIGN.md §16). Runs the
# storage-seam unit suite, the FULL fault-plan x injection-point sweep
# (SPINSCOPE_DISKCHAOS_FULL widens the matrix the default ctest lane runs
# reduced: more write/power-loss ordinals, threads {1,2,8}, procs {1,2}),
# and the journal scrub corruption corpus. Green means: no fault plan can
# make a campaign produce silently-wrong output.
run_diskchaos_lane() {
    echo "=== lane: diskchaos ==="
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${JOBS}" \
        --target test_util_io test_scanner_diskchaos test_scanner_journal
    ./build/tests/test_util_io
    SPINSCOPE_DISKCHAOS_FULL=1 ./build/tests/test_scanner_diskchaos
    ./build/tests/test_scanner_journal
    echo "=== lane diskchaos: OK ==="
}

# Out-of-core lane: run a mid-scale (2.2 M domain) streaming Table 1 campaign
# under a hard RLIMIT_AS ceiling. The streaming population (DESIGN.md §15)
# keeps the campaign's address space flat (~27 MB with a single malloc arena)
# regardless of domain count, so the 96 MB ceiling leaves >3x headroom — an
# accidental O(domains) allocation blows through it and the lane fails loudly
# (bad_alloc abort, or the watchdog timeout when the failure degenerates into
# a chunk-retry crawl). RSS_CEILING_KB overrides the ceiling.
run_rss_lane() {
    echo "=== lane: rss ==="
    cmake --preset default >/dev/null
    cmake --build --preset default -j "${JOBS}" --target bench_table1
    local ceiling_kb="${RSS_CEILING_KB:-98304}"
    (
        ulimit -v "${ceiling_kb}"
        MALLOC_ARENA_MAX=1 timeout 600 ./build/bench/bench_table1 \
            --scale=100 --threads=2 --telemetry=off >/dev/null
    )
    echo "=== lane rss: OK (2.2 M-domain campaign held under $((ceiling_kb / 1024)) MB address space) ==="
}

main() {
    local lanes=("${@:-default}")
    if [ "${1:-}" = "all" ]; then
        lanes=(default sanitize tsan)
        if lint_available; then
            lanes+=(lint)
        else
            echo "note: clang-tidy not on PATH, skipping lint lane" >&2
        fi
    fi
    for lane in "${lanes[@]}"; do
        case "${lane}" in
            default|sanitize|tsan) run_lane "${lane}" ;;
            bench) run_bench_lane ;;
            chaos) run_chaos_lane ;;
            diskchaos) run_diskchaos_lane ;;
            rss) run_rss_lane ;;
            lint)
                if lint_available; then
                    run_lane lint
                else
                    echo "error: lint lane requires clang-tidy on PATH" >&2
                    exit 2
                fi
                ;;
            *)
                echo "error: unknown lane '${lane}' (default|sanitize|tsan|lint|bench|chaos|diskchaos|rss|all)" >&2
                exit 2
                ;;
        esac
    done
}

main "$@"
