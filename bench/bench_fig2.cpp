// bench/bench_fig2.cpp
//
// Regenerates Figure 2 of the paper: across n = 12 measurement weeks sampled
// from the campaign (CW 15/2022 - CW 20/2023), in how many weeks did each
// spin-capable domain actually spin? Compared against the theoretical
// binomial behaviour of the RFC 9000 (disable 1-in-16) and RFC 9312
// (1-in-8) lotteries for an always-enabled host.
//
// Reproduction targets: just under 20 % of domains spin in all 12 weeks,
// 5-10 % in each other bin, and the measured curve stays below both RFC
// overlays at high week counts (hosts spin *less* than the RFCs allow —
// deployment churn on top of the lottery).

#include <cstdio>

#include "analysis/adoption.hpp"
#include "analysis/csv.hpp"
#include "analysis/longitudinal.hpp"
#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv, /*default_count=*/12);
    bench::banner("Figure 2 — RFC lottery compliance across 12 weeks", options);

    bench::Stopwatch watch;
    web::Population population{{options.scale, options.seed}};
    const auto weeks = static_cast<unsigned>(options.count);
    analysis::LongitudinalAggregator longitudinal{weeks};

    // Only domains of spin-capable organizations can ever contribute to the
    // "spun in any week" population; skipping the rest keeps the bench fast
    // without changing the histogram.
    std::uint64_t scanned = 0;
    for (unsigned sample = 0; sample < weeks; ++sample) {
        // Spread the sampled weeks across the 58-week campaign.
        const int week = static_cast<int>(sample * 57 / (weeks > 1 ? weeks - 1 : 1));
        scanner::ScanOptions scan_options;
        scan_options.week = week;
        scanner::Campaign campaign{population, scan_options};
        for (const auto& domain : population.domains()) {
            if (!domain.quic || population.org_of(domain).spin_host_rate <= 0.0) continue;
            const auto scan = campaign.scan_domain(domain);
            ++scanned;
            const bool connected = scan.quic_ok();
            const bool spun =
                analysis::classify_domain(scan) == analysis::DomainSpinClass::spinning;
            longitudinal.add(domain.id, sample, connected, spun);
        }
    }

    std::printf("%s\n", longitudinal.render_figure().c_str());
    bench::write_csv(options, "fig2.csv", analysis::weeks_histogram_csv(longitudinal));
    std::printf("paper: just under 20 %% spin in all 12 weeks; 5-10 %% in each other bin;\n"
                "       measured curve below the RFC overlays at high week counts.\n");
    std::printf("\nscanned %llu domain-weeks in %.1f s\n",
                static_cast<unsigned long long>(scanned), watch.seconds());
    return 0;
}
