// bench/bench_fig2.cpp
//
// Regenerates Figure 2 of the paper: across n = 12 measurement weeks sampled
// from the campaign (CW 15/2022 - CW 20/2023), in how many weeks did each
// spin-capable domain actually spin? Compared against the theoretical
// binomial behaviour of the RFC 9000 (disable 1-in-16) and RFC 9312
// (1-in-8) lotteries for an always-enabled host.
//
// Reproduction targets: just under 20 % of domains spin in all 12 weeks,
// 5-10 % in each other bin, and the measured curve stays below both RFC
// overlays at high week counts (hosts spin *less* than the RFCs allow —
// deployment churn on top of the lottery).
//
// Out-of-core sweep shape (DESIGN.md §15): domains-outer, weeks-inner. The
// first sampled week's campaign streams the universe via bench::run_campaign;
// for each spin-capable domain it delivers, the sink scans the remaining
// sampled weeks inline and folds the domain's complete weekly bitmasks into
// the aggregator in one add_domain() call. Nothing is retained per domain —
// memory is O(weeks), not O(domains).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/adoption.hpp"
#include "analysis/csv.hpp"
#include "analysis/longitudinal.hpp"
#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv, /*default_count=*/12);
    bench::banner("Figure 2 — RFC lottery compliance across 12 weeks", options);

    bench::Stopwatch watch;
    web::PopulationModel model{{options.scale, options.seed}};
    // Weekly outcomes are folded as 32-bit masks; the paper samples 12 weeks.
    const auto weeks = std::min(static_cast<unsigned>(options.count), 32u);
    analysis::LongitudinalAggregator longitudinal{weeks};

    // One campaign per sampled week, spread across the 58-week campaign; all
    // share the model, so each is O(1) state.
    std::vector<scanner::Campaign> campaigns;
    campaigns.reserve(weeks);
    for (unsigned sample = 0; sample < weeks; ++sample) {
        scanner::ScanOptions scan_options;
        scan_options.week = static_cast<int>(sample * 57 / (weeks > 1 ? weeks - 1 : 1));
        if (sample == 0) {
            scan_options.threads = options.threads;
            scan_options.journal_dir = options.journal_dir;
        }
        campaigns.emplace_back(model, scan_options);
    }

    // Only domains of spin-capable organizations can ever contribute to the
    // "spun in any week" population; skipping the rest keeps the bench fast
    // without changing the histogram.
    std::uint64_t scanned = 0;
    bench::run_campaign(
        options, campaigns.front(),
        [&](const web::Domain& domain, scanner::DomainScan&& scan) {
            if (!domain.quic || model.org_of(domain).spin_host_rate <= 0.0) return;
            std::uint32_t connected_mask = 0;
            std::uint32_t spun_mask = 0;
            for (unsigned sample = 0; sample < weeks; ++sample) {
                const scanner::DomainScan week_scan =
                    sample == 0 ? std::move(scan)
                                : campaigns[sample].scan_domain(domain);
                ++scanned;
                if (week_scan.quic_ok()) connected_mask |= 1U << sample;
                if (analysis::classify_domain(week_scan) ==
                    analysis::DomainSpinClass::spinning) {
                    spun_mask |= 1U << sample;
                }
            }
            longitudinal.add_domain(connected_mask, spun_mask);
        });

    std::printf("%s\n", longitudinal.render_figure().c_str());
    bench::write_csv(options, "fig2.csv", analysis::weeks_histogram_csv(longitudinal));
    std::printf("paper: just under 20 %% spin in all 12 weeks; 5-10 %% in each other bin;\n"
                "       measured curve below the RFC overlays at high week counts.\n");
    std::printf("\nscanned %llu domain-weeks in %.1f s\n",
                static_cast<unsigned long long>(scanned), watch.seconds());
    return 0;
}
