// bench/bench_table3.cpp
//
// Regenerates Table 3 of the paper: how QUIC domains that do not spin set
// the spin bit — almost all zero it, a small share fixes it to one, and the
// simplistic grease filter only fires for a handful of connections.

#include <cstdio>

#include "analysis/adoption.hpp"
#include "bench/bench_common.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv);
    bench::banner("Table 3 — spin-bit configuration of QUIC domains (IPv4)", options);

    bench::Stopwatch watch;
    // Streaming population (DESIGN.md §15): no resident domain vector.
    web::PopulationModel model{{options.scale, options.seed}};
    scanner::ScanOptions scan_options;
    scan_options.week = 57;
    scan_options.threads = options.threads;
    scan_options.journal_dir = options.journal_dir;
    scanner::Campaign campaign{model, scan_options};

    analysis::AdoptionAggregator aggregator{model, false};
    bench::run_campaign(options, campaign,
                        [&](const web::Domain& domain, scanner::DomainScan&& scan) {
                            aggregator.add(domain, scan);
                        });

    std::printf("%s\n", aggregator.render_config_table().c_str());
    std::printf(
        "paper (1:1 scale, share of QUIC domains):\n"
        "  Toplists      All Zero 507 967 (92.85 %%)  All One    859 (0.16 %%)"
        "  Spin    37 768  Grease    58 (0.01 %%)\n"
        "  CZDS          All Zero 19 849 938 (89.39 %%)  All One 62 375 (0.28 %%)"
        "  Spin 2 257 938  Grease 5 307 (0.02 %%)\n"
        "  com/net/org   All Zero 16 282 445 (88.42 %%)  All One 53 717 (0.29 %%)"
        "  Spin 2 047 280  Grease 4 653 (0.03 %%)\n");
    std::printf("\ncompleted in %.1f s\n", watch.seconds());
    return 0;
}
