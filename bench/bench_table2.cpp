// bench/bench_table2.cpp
//
// Regenerates Table 2 of the paper: QUIC connections and spin-bit activity
// per AS organization for the com/net/org zones (IPv4, CW 20/2023). The
// reproduction targets are the ranking and the per-organization spin
// shares: hyperscalers ~0 %, medium hosters >50 %, a broad <other> base at
// ~53 %.

#include <cstdio>

#include "analysis/adoption.hpp"
#include "bench/bench_common.hpp"
#include "util/format.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv);
    bench::banner("Table 2 — per-AS-organization spin support (com/net/org, IPv4)", options);

    bench::Stopwatch watch;
    // Streaming population (DESIGN.md §15): the campaign materializes its own
    // transient DomainBlocks from the model; no resident domain vector.
    web::PopulationModel model{{options.scale, options.seed}};
    scanner::ScanOptions scan_options;
    scan_options.week = 57;
    scan_options.threads = options.threads;
    scan_options.journal_dir = options.journal_dir;
    scanner::Campaign campaign{model, scan_options};

    analysis::AdoptionAggregator aggregator{model, false};
    bench::run_campaign(options, campaign,
                        [&](const web::Domain& domain, scanner::DomainScan&& scan) {
                            aggregator.add(domain, scan);
                        });

    std::printf("%s\n", aggregator.render_org_table(8).c_str());
    std::printf("paper (1:1 scale, connections):\n"
                "  1  11 482 201  Cloudflare        0        0.0 %%\n"
                "  2   6 160 065  Google        6 867        0.1 %%  (spin rank 54)\n"
                "  3   1 546 788  Hostinger   802 585       51.9 %%  (spin rank 1)\n"
                "  4     326 230  Fastly            0        0.0 %%\n"
                "  5     219 249  OVH SAS     132 395       60.4 %%  (spin rank 2)\n"
                "  6     218 206  A2 Hosting  129 577       59.4 %%  (spin rank 3)\n"
                "  7     173 503  SingleHop   102 527       59.1 %%  (spin rank 4)\n"
                "  8     148 705  ServerCntrl 100 518       67.6 %%  (spin rank 5)\n"
                "     2 519 770  <other>   1 342 065       53.3 %%\n");

    std::printf("\nWebserver attribution of spinning connections (paper §4.2: LiteSpeed >80 %%,"
                " plus ~7 %% imunify360 built on it):\n");
    const auto spin_servers = aggregator.webserver_connections(/*spinning_only=*/true);
    std::uint64_t total = 0;
    for (const auto& [name, count] : spin_servers) total += count;
    for (const auto& [name, count] : spin_servers) {
        std::printf("  %-22s %9llu (%s)\n", name.c_str(),
                    static_cast<unsigned long long>(count),
                    util::percent(static_cast<double>(count) /
                                  static_cast<double>(std::max<std::uint64_t>(1, total)))
                        .c_str());
    }
    std::printf("\ncompleted in %.1f s\n", watch.seconds());
    return 0;
}
