// bench/bench_table1.cpp
//
// Regenerates Table 1 of the paper: IPv4 overview for CW 20, 2023 — per
// target list (Toplists, CZDS, com/net/org), total/resolved/QUIC domain
// counts, the share of QUIC domains with spin-bit activity, and the same
// funnel at the IP level.
//
// The synthetic population is a 1:N downscale of the paper's universe; the
// percentage columns are the reproduction targets, the counts scale with N.
// The campaign streams DomainBlocks from the PopulationModel (DESIGN.md §15)
// — no domain vector is ever materialized, so peak RSS is flat in the domain
// count. --scales=A,B,C measures that flatness directly: one campaign per
// scale, all rows written as a spinscope-bench-scale-v1 family.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/adoption.hpp"
#include "bench/bench_common.hpp"
#include "scanner/campaign.hpp"
// Heap accounting for the BENCH_scale.json trajectory (this file is the
// binary's single TU, the one place the interposer may live).
#include "telemetry/alloc_interpose.hpp"
#include "web/population.hpp"

using namespace spinscope;

namespace {

/// Runs one full Table 1 campaign at `scale` and returns its trajectory row.
/// `print_tables` keeps the sweep output readable (tables once, not per row).
bench::Trajectory run_at_scale(const bench::Options& options, double scale,
                               bool print_tables) {
    web::PopulationModel model{{scale, options.seed}};

    scanner::ScanOptions scan_options;
    scan_options.ipv6 = false;
    scan_options.week = 57;  // CW 20/2023, counted from CW 15/2022
    scan_options.threads = options.threads;
    scan_options.journal_dir = options.journal_dir;
    scanner::Campaign campaign{model, scan_options};

    telemetry::MetricsRegistry registry;
    campaign.set_metrics(&registry);

    analysis::AdoptionAggregator aggregator{model, /*ipv6=*/false};
    std::uint64_t scanned = 0;
    const telemetry::AllocSnapshot campaign_allocs;
    const bench::Stopwatch campaign_watch;
    const auto stats = bench::run_campaign(
        options, campaign, [&](const web::Domain& domain, scanner::DomainScan&& scan) {
            aggregator.add(domain, scan);
            ++scanned;
        });

    if (print_tables) {
        std::printf("%s\n", aggregator.render_overview_table().c_str());
        std::printf("paper (1:1 scale):\n"
                    "  Toplists     #Domains 2 732 702 -> 1 937 701 -> 547 107 -> 6.9 %%\n"
                    "               #IPs                    774 832 -> 118 544 -> 15.2 %%\n"
                    "  CZDS         #Domains 216 520 521 -> 183 735 238 -> 22 205 271 -> 10.2 %%\n"
                    "               #IPs                  10 271 558 ->   259 766 -> 45.3 %%\n"
                    "  com/net/org  #Domains 183 047 638 -> 158 891 771 -> 18 415 242 -> 11.1 %%\n"
                    "               #IPs                   9 203 681 ->   242 877 -> 46.4 %%\n");
    }
    std::printf("\nscale 1:%.0f — scanned %llu domains in %.1f s "
                "(%.0f domains/sec, QUIC-ok %.1f %%)\n",
                scale, static_cast<unsigned long long>(scanned),
                campaign_watch.seconds(), stats.domains_per_sec(),
                stats.quic_ok_rate() * 100.0);
    bench::write_telemetry(options, "table1", registry);

    auto trajectory = bench::measure_trajectory("scale", scanned,
                                                campaign_watch.seconds(),
                                                campaign_allocs);
    trajectory.procs = options.procs;
    trajectory.scale = scale;
    if (const auto* gauge = registry.find_gauge("obs.proc.peak_worker_rss_bytes");
        gauge != nullptr && gauge->has_value()) {
        trajectory.peak_worker_rss_bytes = static_cast<std::uint64_t>(gauge->value());
    }
    return trajectory;
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv);
    bench::banner("Table 1 — IPv4 overview (CW 20, 2023)", options);

    if (options.scales.empty()) {
        const auto trajectory = run_at_scale(options, options.scale, /*print_tables=*/true);
        bench::write_trajectory(options, trajectory);
        return 0;
    }

    // Scale sweep: largest downscale (fewest domains) first, so the process
    // peak-RSS high-water mark can only be pushed up by a later, larger
    // universe — the flatness bench_check.py gates (see trajectory.hpp).
    std::vector<double> scales = options.scales;
    std::sort(scales.begin(), scales.end(), std::greater<>{});
    std::vector<bench::Trajectory> rows;
    rows.reserve(scales.size());
    for (std::size_t i = 0; i < scales.size(); ++i) {
        bench::Options run = options;
        if (!run.journal_dir.empty()) {
            // Each scale is a different campaign geometry; journals must not
            // be shared across them.
            run.journal_dir += "-scale" + std::to_string(i);
        }
        rows.push_back(run_at_scale(run, scales[i], /*print_tables=*/i == 0));
    }
    if (!options.trajectory_path.empty()) {
        bench::write_scale_sweep_file(options.trajectory_path, rows);
    }
    return 0;
}
