// bench/bench_common.hpp
//
// Shared plumbing for the table/figure reproduction harnesses: command-line
// options (scale, seed), wall-clock timing and banner output. Each bench
// binary regenerates one table or figure of the paper; see EXPERIMENTS.md.

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "bench/progress.hpp"
#include "bench/trajectory.hpp"
#include "scanner/campaign.hpp"
#include "scanner/journal.hpp"
#include "scanner/procpool.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/proc.hpp"

namespace spinscope::bench {

/// Common harness options. `scale` divides the paper's CW 20/2023 universe;
/// all percentages are scale-invariant, absolute counts scale linearly.
struct Options {
    double scale = 2000.0;
    /// Multi-scale sweep (--scales=A,B,C): benches that support it run once
    /// per scale and emit a spinscope-bench-scale-v1 row family to
    /// --trajectory instead of a single row. Empty = single --scale run.
    std::vector<double> scales;
    std::uint64_t seed = 20230520;
    /// Extra per-bench knob (e.g. corpus size for the accuracy figures).
    std::uint64_t count = 0;
    /// When non-empty, figure benches also write their data series as
    /// <csv_prefix><figure>.csv for external plotting.
    std::string csv_prefix;
    /// Telemetry sidecar path; "<bench>.telemetry.json" by default,
    /// overridable with --telemetry=path, disabled with --telemetry=off.
    std::string telemetry_path;
    /// Campaign worker threads (ScanOptions::threads); 0 = one per hardware
    /// thread. Results are byte-identical for every value (DESIGN.md §9) —
    /// this is purely a wall-clock knob.
    unsigned threads = 1;
    /// Crash-safe journal directory (ScanOptions::journal_dir, DESIGN.md
    /// §11); empty disables journaling.
    std::string journal_dir;
    /// Worker processes (--procs=N, DESIGN.md §13): the map pass forks N
    /// crash-isolated workers over a shared journal, then reduces. 0 = the
    /// classic single-process run. Byte-identical output for every value.
    unsigned procs = 0;
    /// True when --procs had to synthesize journal_dir (no --journal given);
    /// run_campaign removes the directory after a successful reduce.
    bool journal_is_temp = false;
    /// Resume from the journal left by a killed run (--resume; requires
    /// --journal). Output is byte-identical to an uninterrupted run.
    bool resume = false;
    /// Verify-and-repair the journal before running (--scrub; requires
    /// --journal, DESIGN.md §16): torn tails are truncated away, corrupt
    /// records quarantined into <journal>/corrupt/, and the scrub report
    /// printed. Combine with --resume to pick a damaged campaign back up.
    bool scrub = false;
    /// Flight-recorder output (--trace=FILE, off by default): run_campaign
    /// records the campaign timeline and writes FILE (deterministic sim
    /// spans; Perfetto/chrome://tracing loadable) plus a `.wall.json`
    /// scheduling sidecar next to it.
    std::string trace_path;
    /// Live progress line every N merged domains (--progress or
    /// --progress=N); 0 = off.
    std::uint64_t progress_every = 0;
    /// Perf-trajectory snapshot path (--trajectory=FILE); empty = off. See
    /// bench/trajectory.hpp.
    std::string trajectory_path;
};

inline Options parse_options(int argc, char** argv, std::uint64_t default_count = 0) {
    Options options;
    options.count = default_count;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0) {
            options.scale = std::atof(arg + 8);
        } else if (std::strncmp(arg, "--scales=", 9) == 0) {
            options.scales.clear();
            for (const char* p = arg + 9; *p != '\0';) {
                char* end = nullptr;
                const double value = std::strtod(p, &end);
                if (end == p) break;  // trailing garbage: stop parsing
                if (value > 0.0) options.scales.push_back(value);
                p = (*end == ',') ? end + 1 : end;
            }
            if (options.scales.empty()) {
                std::fprintf(stderr, "--scales needs a comma-separated list of "
                                     "positive downscale factors\n");
                std::exit(2);
            }
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            options.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--count=", 8) == 0) {
            options.count = std::strtoull(arg + 8, nullptr, 10);
        } else if (std::strncmp(arg, "--csv=", 6) == 0) {
            options.csv_prefix = arg + 6;
        } else if (std::strncmp(arg, "--telemetry=", 12) == 0) {
            options.telemetry_path = arg + 12;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = static_cast<unsigned>(std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--journal=", 10) == 0) {
            options.journal_dir = arg + 10;
        } else if (std::strncmp(arg, "--procs=", 8) == 0) {
            options.procs = static_cast<unsigned>(std::strtoul(arg + 8, nullptr, 10));
        } else if (std::strcmp(arg, "--resume") == 0) {
            options.resume = true;
        } else if (std::strcmp(arg, "--scrub") == 0) {
            options.scrub = true;
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            options.trace_path = arg + 8;
        } else if (std::strcmp(arg, "--progress") == 0) {
            options.progress_every = 500;
        } else if (std::strncmp(arg, "--progress=", 11) == 0) {
            options.progress_every = std::strtoull(arg + 11, nullptr, 10);
        } else if (std::strncmp(arg, "--trajectory=", 13) == 0) {
            options.trajectory_path = arg + 13;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf(
                "usage: %s [--scale=N] [--scales=A,B,C] [--seed=N] [--count=N] [--csv=prefix] "
                "[--telemetry=path|off] [--threads=N] [--journal=dir] [--procs=N] "
                "[--resume] [--scrub] [--trace=file] [--progress[=N]] "
                "[--trajectory=file]\n",
                argv[0]);
            std::exit(0);
        }
    }
    if (options.resume && options.journal_dir.empty()) {
        std::fprintf(stderr, "--resume requires --journal=dir\n");
        std::exit(2);
    }
    if (options.scrub && options.journal_dir.empty()) {
        std::fprintf(stderr, "--scrub requires --journal=dir\n");
        std::exit(2);
    }
    if (options.procs > 0 && options.journal_dir.empty()) {
        // The multi-process map pass needs a shared journal even when the
        // caller doesn't care about crash recovery; park one in the system
        // temp directory and clean it up after the reduce.
        const auto dir = std::filesystem::temp_directory_path() /
                         ("spinscope-bench-journal-" +
                          std::to_string(util::current_pid()));
        options.journal_dir = dir.string();
        options.journal_is_temp = true;
    }
    return options;
}

/// Runs (or, with --resume, resumes) a campaign honouring the harness's
/// journal, flight-recorder and progress options. Benches that drive a
/// Campaign route it through here so every table/figure binary gets
/// kill-and-resume, --trace and --progress for free.
template <typename Sink>
scanner::CampaignStats run_campaign(const Options& options, scanner::Campaign& campaign,
                                    Sink&& sink) {
    telemetry::TraceRecorder trace;
    if (!options.trace_path.empty()) campaign.set_trace(&trace);
    ProgressReporter reporter{campaign.domain_count()};
    if (options.progress_every > 0) {
        campaign.set_progress(options.progress_every,
                              [&reporter](const scanner::CampaignStats& stats) {
                                  reporter.report(stats);
                              });
    }

    scanner::CampaignStats stats;
    if (options.scrub) {
        // Offline verify/repair before touching the journal (DESIGN.md §16):
        // after this, resume/reduce sees either a clean journal or an
        // explicit rescan list — never a torn or corrupt record.
        const scanner::ScrubReport report =
            scanner::scrub_journal(options.journal_dir);
        std::printf("%s", report.render().c_str());
    }
    if (options.procs > 0) {
        // Crash-isolated map pass (DESIGN.md §13): fork N workers over a
        // shared journal, then reduce it through the caller's sink. --resume
        // keeps whatever chunks a previous (possibly killed) run journaled.
        scanner::ProcPoolOptions pool;
        pool.procs = options.procs;
        pool.fresh = !options.resume;
        if (options.resume) {
            std::printf("resuming from journal %s\n", options.journal_dir.c_str());
        }
        const scanner::ProcPoolReport report = scanner::run_procs(campaign, pool);
        std::printf("map pass: %u worker procs, %llu/%llu chunks journaled "
                    "(%llu proc restarts, %llu hang kills, %llu quarantined)\n",
                    report.procs,
                    static_cast<unsigned long long>(report.chunks_recorded),
                    static_cast<unsigned long long>(report.chunks_total),
                    static_cast<unsigned long long>(report.proc_restarts),
                    static_cast<unsigned long long>(report.hang_kills),
                    static_cast<unsigned long long>(report.chunks_quarantined));
        stats = campaign.reduce(sink);
        stats.proc_restarts = report.proc_restarts;
        if (options.journal_is_temp) {
            std::error_code ec;
            std::filesystem::remove_all(options.journal_dir, ec);
        }
    } else if (options.resume) {
        std::printf("resuming from journal %s\n", options.journal_dir.c_str());
        stats = campaign.resume(sink);
    } else {
        stats = campaign.run(sink);
    }

    if (options.progress_every > 0) {
        reporter.finish(stats);
        campaign.set_progress(0, {});
    }
    if (!options.trace_path.empty()) {
        campaign.set_trace(nullptr);
        if (trace.write(options.trace_path)) {
            std::printf("wrote %s (+ %s)\n", options.trace_path.c_str(),
                        telemetry::TraceRecorder::wall_sidecar_path(options.trace_path)
                            .c_str());
        } else {
            std::fprintf(stderr, "failed to write %s\n", options.trace_path.c_str());
        }
    }
    return stats;
}

/// Writes the harness's --trajectory snapshot, if requested.
inline void write_trajectory(const Options& options, const Trajectory& trajectory) {
    if (options.trajectory_path.empty()) return;
    write_trajectory_file(options.trajectory_path, trajectory);
}

/// Writes the run's metrics registry as a JSON sidecar next to the bench
/// output, so a BENCH_*.json delta can be attributed to specific phases.
/// `name` is the bench identifier ("table1"); the default path is
/// <name>.telemetry.json. --telemetry=off suppresses the sidecar.
inline void write_telemetry(const Options& options, const char* name,
                            const telemetry::MetricsRegistry& registry) {
    if (options.telemetry_path == "off") return;
    const std::string path = options.telemetry_path.empty()
                                 ? std::string{name} + ".telemetry.json"
                                 : options.telemetry_path;
    if (telemetry::write_json_file(registry, path)) {
        std::printf("wrote %s (%zu metrics)\n", path.c_str(), registry.size());
    } else {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
}

/// RAII wall-clock section timer.
class Stopwatch {
public:
    Stopwatch() : start_{std::chrono::steady_clock::now()} {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Writes `content` to `<prefix><name>` atomically (write-temp + rename, so
/// a crash mid-export never leaves a torn CSV) and reports the path.
inline void write_csv(const Options& options, const char* name, const std::string& content) {
    if (options.csv_prefix.empty()) return;
    const std::string path = options.csv_prefix + name;
    if (util::write_file_atomic(path, content)) {
        std::printf("wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
}

inline void banner(const char* what, const Options& options) {
    std::printf("=== spinscope bench: %s ===\n", what);
    std::printf("population scale 1:%.0f, seed %llu", options.scale,
                static_cast<unsigned long long>(options.seed));
    if (options.threads != 1) {
        std::printf(", campaign threads %u%s", options.threads,
                    options.threads == 0 ? " (hardware)" : "");
    }
    if (options.procs > 0) {
        std::printf(", worker procs %u", options.procs);
    }
    std::printf("\n\n");
}

}  // namespace spinscope::bench
