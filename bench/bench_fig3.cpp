// bench/bench_fig3.cpp
//
// Regenerates Figure 3 of the paper (plus the §5.2 reordering analysis):
// the distribution of the absolute difference between the per-connection
// mean of spin-bit RTT estimates and the QUIC stack baseline, for spinning
// and grease-filtered connections, with (S) and without (R) correcting the
// received packet order.
//
// Reproduction targets (Spin (R)): ~97.7 % of connections overestimate,
// ~28.8 % within 25 ms, ~41.3 % above 200 ms; R-vs-S differs for only
// ~0.28 % of connections and sorting changes means by <1 ms almost always.

#include <cstdio>

#include "analysis/accuracy.hpp"
#include "analysis/csv.hpp"
#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

namespace {

/// Feeds every spin-candidate connection of `weeks` sampled weeks into the
/// aggregator — the §5.1 corpus ("all IPv4 connections with spin bit
/// activity throughout the campaign").
void build_corpus(const web::Population& population, unsigned weeks,
                  analysis::AccuracyAggregator& aggregator, std::uint64_t& connections) {
    for (unsigned sample = 0; sample < weeks; ++sample) {
        const int week = static_cast<int>(sample * 57 / (weeks > 1 ? weeks - 1 : 1));
        scanner::ScanOptions scan_options;
        scan_options.week = week;
        scanner::Campaign campaign{population, scan_options};
        for (const auto& domain : population.domains()) {
            if (!domain.quic || population.org_of(domain).spin_host_rate <= 0.0) continue;
            const auto scan = campaign.scan_domain(domain);
            for (const auto& trace : scan.connections) {
                if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
                ++connections;
                aggregator.add(core::assess_connection(trace));
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv, /*default_count=*/12);
    bench::banner("Figure 3 — absolute spin-vs-QUIC RTT difference", options);

    bench::Stopwatch watch;
    web::Population population{{options.scale, options.seed}};
    analysis::AccuracyAggregator aggregator;
    std::uint64_t connections = 0;
    build_corpus(population, static_cast<unsigned>(options.count), aggregator, connections);

    std::printf("%s\n", aggregator.render_abs_figure().c_str());
    bench::write_csv(options, "fig3.csv", analysis::abs_histogram_csv(aggregator));
    std::printf("%s\n", aggregator.render_headlines().c_str());
    std::printf("%s\n", aggregator.render_reordering_impact().c_str());
    std::printf("corpus: %llu QUIC connections in %.1f s\n",
                static_cast<unsigned long long>(connections), watch.seconds());
    return 0;
}
