// bench/bench_micro_sim.cpp
//
// google-benchmark microbenchmarks of the simulation layer: event-queue
// throughput, link transmission, the spin observer hot path, and a full
// QUIC connection exchange — the quantities that bound how large a
// synthetic campaign one core can sweep.

#include <benchmark/benchmark.h>

#include "core/observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

namespace {

using namespace spinscope;

void BM_EventQueue(benchmark::State& state) {
    const auto events = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        netsim::Simulator sim;
        for (std::size_t i = 0; i < events; ++i) {
            sim.schedule_after(util::Duration::micros(static_cast<std::int64_t>(i % 97)),
                               [] {});
        }
        sim.run();
        benchmark::DoNotOptimize(sim.processed());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

void BM_LinkTransmission(benchmark::State& state) {
    netsim::Simulator sim;
    netsim::LinkConfig config;
    config.base_delay = util::Duration::micros(100);
    config.jitter_scale = util::Duration::micros(10);
    netsim::Link link{sim, config, util::Rng{1}};
    std::size_t received = 0;
    link.set_receiver([&received](spinscope::bytes::ConstByteSpan) { ++received; });
    const netsim::Datagram datagram(1200, 0xab);
    for (auto _ : state) {
        link.send(datagram.clone());
        sim.run();
    }
    benchmark::DoNotOptimize(received);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1200);
}
BENCHMARK(BM_LinkTransmission);

void BM_SpinObserver(benchmark::State& state) {
    // Stream of observations with an edge every 16 packets.
    std::vector<core::SpinObservation> packets;
    bool value = false;
    for (int i = 0; i < 4096; ++i) {
        if (i % 16 == 0) value = !value;
        packets.push_back({util::TimePoint::from_nanos(i * 100'000),
                           static_cast<quic::PacketNumber>(i), value, 0});
    }
    for (auto _ : state) {
        core::SpinEdgeObserver observer;
        for (const auto& p : packets) observer.on_packet(p);
        benchmark::DoNotOptimize(observer.result().samples_ms.size());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SpinObserver);

void BM_MeasureSpinRtt(benchmark::State& state) {
    std::vector<core::SpinObservation> packets;
    bool value = false;
    for (int i = 0; i < 1024; ++i) {
        if (i % 16 == 0) value = !value;
        packets.push_back({util::TimePoint::from_nanos(i * 100'000),
                           static_cast<quic::PacketNumber>(i), value, 0});
    }
    const auto order = state.range(0) == 0 ? core::PacketOrder::received
                                           : core::PacketOrder::sorted;
    for (auto _ : state) {
        auto result = core::measure_spin_rtt(packets, order);
        benchmark::DoNotOptimize(result.samples_ms.size());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MeasureSpinRtt)->Arg(0)->Arg(1);

void BM_FullConnectionExchange(benchmark::State& state) {
    const auto response_bytes = static_cast<std::size_t>(state.range(0));
    util::Rng rng{7};
    for (auto _ : state) {
        netsim::Simulator sim;
        netsim::LinkConfig link;
        link.base_delay = util::Duration::millis(15);
        netsim::Path path{sim, link, link, rng};
        quic::ConnectionConfig ccfg;
        ccfg.role = quic::Role::client;
        quic::Connection client{sim, ccfg, rng.fork(1), [&path](netsim::Datagram dg) {
                                    path.forward_link().send(std::move(dg));
                                }};
        quic::ConnectionConfig scfg;
        scfg.role = quic::Role::server;
        quic::Connection server{sim, scfg, rng.fork(2), [&path](netsim::Datagram dg) {
                                    path.return_link().send(std::move(dg));
                                }};
        path.forward_link().set_receiver(
            [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
        path.return_link().set_receiver(
            [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });
        server.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            server.send_stream(0, std::vector<std::uint8_t>(response_bytes, 1), true);
        };
        client.on_handshake_complete = [&] {
            client.send_stream(0, std::vector<std::uint8_t>(200, 2), true);
        };
        client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            client.close(0, "done");
        };
        client.connect();
        sim.run_until(util::TimePoint::origin() + util::Duration::seconds(30));
        benchmark::DoNotOptimize(client.counters().packets_received);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(response_bytes));
}
BENCHMARK(BM_FullConnectionExchange)->Arg(20'000)->Arg(100'000);

void BM_CampaignDomainScan(benchmark::State& state) {
    web::Population population{{50000.0, 20230520}};
    scanner::Campaign campaign{population, {}};
    // Rotate over the QUIC-capable domains.
    std::vector<const web::Domain*> targets;
    for (const auto& d : population.domains()) {
        if (d.quic) targets.push_back(&d);
    }
    std::size_t next = 0;
    for (auto _ : state) {
        const auto scan = campaign.scan_domain(*targets[next]);
        benchmark::DoNotOptimize(scan.connections.size());
        next = (next + 1) % targets.size();
    }
}
BENCHMARK(BM_CampaignDomainScan);

void BM_PopulationGeneration(benchmark::State& state) {
    const double scale = static_cast<double>(state.range(0));
    for (auto _ : state) {
        web::Population population{{scale, 42}};
        benchmark::DoNotOptimize(population.domains().size());
    }
}
BENCHMARK(BM_PopulationGeneration)->Arg(20000)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
