// bench/bench_ablation_heuristics.cpp
//
// Ablation of the observer-side robustness mechanisms (DESIGN.md §5.2):
// under increasing packet reordering, compare five spin observers on the
// same connections —
//   naive            raw edge detection (the paper's baseline method),
//   pn-filter        RFC 9312 packet-number filtering (endpoint vantage),
//   static-floor     reject samples below a fixed plausibility floor,
//   dynamic          reject samples far below the smoothed estimate,
//   VEC              only endpoint-validated edges (De Vaere et al.).
//
// Reported per variant: accepted samples, share of implausible (<1/2 true
// RTT) samples, and the median relative error versus the QUIC stack
// baseline. The paper's §5.2 finding — reordering is rare in the wild but
// ruinous for a naive observer when it does occur — shows as the naive
// row degrading with the reorder rate while the hardened rows stay flat.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "core/observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

using namespace spinscope;

namespace {

struct VariantResult {
    std::size_t samples = 0;
    std::size_t rejected = 0;
    std::size_t implausible = 0;
    std::vector<double> relative_errors;
};

struct Variant {
    const char* name;
    core::ObserverConfig config;
};

qlog::Trace run_connection(double reorder_rate, std::uint64_t seed, double rtt_ms) {
    netsim::Simulator sim;
    util::Rng rng{seed};
    netsim::LinkConfig link;
    link.base_delay = util::Duration::from_ms(rtt_ms / 2);
    link.jitter_scale = link.base_delay.scaled(0.02);
    link.reorder_probability = reorder_rate;
    // Displacements up to ~1.5 RTT: a straggler from one flight lands amid
    // the next (opposite spin value) flight — the Fig. 1b failure case.
    link.reorder_extra_min = util::Duration::from_ms(1.0);
    link.reorder_extra_max = util::Duration::from_ms(60.0);
    netsim::Path path{sim, link, link, rng};

    quic::SpinConfig spin{quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
    spin.enable_vec = true;

    qlog::Trace trace;
    quic::ConnectionConfig ccfg;
    ccfg.role = quic::Role::client;
    ccfg.spin = spin;
    quic::Connection client{sim, ccfg, rng.fork(1),
                            [&path](netsim::Datagram dg) {
                                path.forward_link().send(std::move(dg));
                            },
                            &trace};
    quic::ConnectionConfig scfg;
    scfg.role = quic::Role::server;
    scfg.spin = spin;
    quic::Connection server{sim, scfg, rng.fork(2), [&path](netsim::Datagram dg) {
                                path.return_link().send(std::move(dg));
                            }};
    path.forward_link().set_receiver(
        [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
    path.return_link().set_receiver(
        [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });
    server.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t>) {
        if (id == scanner::kRequestStream) {
            server.send_stream(id, scanner::build_body(150'000), true);
        }
    };
    client.on_handshake_complete = [&] {
        client.send_stream(scanner::kRequestStream, scanner::build_request("www.a"), true);
    };
    client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
        client.close(0, "done");
    };
    client.connect();
    sim.run_until(util::TimePoint::origin() + util::Duration::seconds(60));
    client.finalize_trace();
    return trace;
}

}  // namespace

int main(int argc, char** argv) {
    auto options = bench::parse_options(argc, argv, /*default_count=*/300);
    bench::banner("Ablation — observer robustness heuristics vs reordering", options);
    const auto connections = static_cast<std::size_t>(options.count);

    const double kRtt = 40.0;
    const double reorder_rates[] = {0.0, 0.002, 0.01, 0.05};

    core::ObserverConfig pn_filter;
    pn_filter.packet_number_filter = true;
    core::ObserverConfig static_floor;
    static_floor.min_plausible_rtt = util::Duration::millis(4);
    core::ObserverConfig dynamic;
    dynamic.dynamic_reject_ratio = 0.25;
    core::ObserverConfig vec;
    vec.require_vec = true;
    const Variant variants[] = {
        {"naive", {}},           {"pn-filter", pn_filter}, {"static-floor", static_floor},
        {"dynamic", dynamic},    {"VEC", vec},
    };

    bench::Stopwatch watch;
    for (const double rate : reorder_rates) {
        std::printf("reorder probability %.3f (per packet, both directions), true RTT %.0f ms\n",
                    rate, kRtt);
        util::TextTable table;
        table.add_row({"observer", "samples", "rejected", "implausible", "median rel. error"});

        std::vector<VariantResult> results(std::size(variants));
        for (std::size_t c = 0; c < connections; ++c) {
            const auto trace =
                run_connection(rate, options.seed + c * 7919 + static_cast<std::uint64_t>(
                                                                   rate * 1e6),
                               kRtt);
            const auto packets = core::spin_observations(trace);
            double quic_mean = 0.0;
            for (const double s : trace.metrics.rtt_samples_ms) quic_mean += s;
            if (trace.metrics.rtt_samples_ms.empty()) continue;
            quic_mean /= static_cast<double>(trace.metrics.rtt_samples_ms.size());

            for (std::size_t v = 0; v < std::size(variants); ++v) {
                core::SpinEdgeObserver observer{variants[v].config};
                for (const auto& p : packets) observer.on_packet(p);
                auto& r = results[v];
                r.rejected += observer.rejected_samples();
                for (const double s : observer.result().samples_ms) {
                    ++r.samples;
                    if (s < kRtt / 2) ++r.implausible;
                }
                if (observer.result().has_samples()) {
                    r.relative_errors.push_back(
                        std::abs(observer.result().mean_ms() - quic_mean) / quic_mean);
                }
            }
        }

        for (std::size_t v = 0; v < std::size(variants); ++v) {
            auto& r = results[v];
            const auto median = util::quantile(r.relative_errors, 0.5);
            table.add_row({variants[v].name, std::to_string(r.samples),
                           std::to_string(r.rejected), std::to_string(r.implausible),
                           median ? util::percent(*median) : "-"});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("completed in %.1f s (%zu connections per reorder rate)\n", watch.seconds(),
                connections);
    return 0;
}
