// bench/bench_observer.cpp
//
// Constrained-observer accuracy sweep (DESIGN.md §14): how much spin-RTT
// utility survives a hardware budget — fixed slot count, keep-or-replace
// eviction, integer EWMA, 1-in-N sampling — as a function of that budget.
// Answers ROADMAP item 3's headline question: what coverage and accuracy
// does a 64K-slot register file retain against ~1M concurrent flows?
//
// Two sections feed one gated table (BENCH_observer.json, checked by
// scripts/bench_check.py under the spinscope-bench-observer-v1 schema):
//
//   campaign   replays real campaign traces through analysis::ObserverReplay
//              under both observer models, so the constrained numbers are
//              directly comparable with the endpoint Fig. 3/4 pipeline;
//   synthetic  a flow-scale sweep (default 256K flows/row plus the 1M-flow
//              roadmap point) of handcrafted short-header streams whose
//              per-flow ground truth is the float-EWMA reference — the
//              idealized result, per the differential suite's equivalence
//              proof — computed from the identical sample sequence.
//
// Per-row guarded metrics: coverage (measured/candidates), mean_abs_err_ms
// vs the reference, within_25ms_share, and packets_per_sec (wall, wide
// tolerance). REGEN=1 scripts/ci.sh bench re-baselines.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/observer.hpp"
#include "bench/bench_common.hpp"
#include "core/constrained_monitor.hpp"
#include "scanner/campaign.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "web/population.hpp"

using namespace spinscope;

namespace {

/// One row of the committed table.
struct Row {
    std::string id;
    unsigned log2_slots = 0;
    core::EvictionPolicy eviction = core::EvictionPolicy::none;
    std::uint32_t sample_every = 1;
    std::uint64_t flows = 0;
    // Guarded metrics.
    double coverage = 0.0;
    double mean_abs_err_ms = 0.0;
    double within_25ms_share = 0.0;
    double packets_per_sec = 0.0;
    // Context (not gated).
    std::uint64_t candidates = 0;
    std::uint64_t measured = 0;
    std::uint64_t tracked = 0;
    std::uint64_t untracked = 0;
    std::uint64_t evictions = 0;
    std::uint64_t sampled_out = 0;
    std::uint64_t active_slots = 0;
};

// --- Synthetic flow universe -------------------------------------------------
//
// Each flow's packet stream is a pure function of (seed, flow index): RTT is
// lognormal around a 50 ms median, packets arrive every RTT/4 with ±12.5 %
// jitter, and the spin flips every 4 packets — so the edge-to-edge interval
// is one (jittered) RTT, exactly what an on-path observer measures. The same
// FlowStream is replayed for the float reference and for every monitor row.

constexpr unsigned kFlipEvery = 4;

struct FlowStream {
    util::Rng rng;
    std::int64_t time_ns = 0;
    std::int64_t gap_ns = 0;
    bool spin = false;
    unsigned until_flip = kFlipEvery;

    void init(std::uint64_t seed, std::uint64_t index) {
        rng = util::Rng{util::derive_stream_seed(seed, index)};
        double rtt_ms = util::sample_lognormal(rng, std::log(50.0), 0.8);
        if (rtt_ms < 2.0) rtt_ms = 2.0;
        if (rtt_ms > 800.0) rtt_ms = 800.0;
        gap_ns = static_cast<std::int64_t>(rtt_ms * 1e6 / kFlipEvery);
        // Flows start staggered across one second so table pressure ramps in
        // rather than arriving as a phase-locked burst.
        time_ns = static_cast<std::int64_t>(rng.uniform_u64(1'000'000'000ULL));
        spin = rng.coin();
        until_flip = kFlipEvery;
    }

    /// Emits the flow's next packet: observation time and spin value.
    [[nodiscard]] std::pair<std::int64_t, bool> next() {
        const std::pair<std::int64_t, bool> out{time_ns, spin};
        time_ns += static_cast<std::int64_t>(
            static_cast<double>(gap_ns) * rng.uniform_double(0.875, 1.125));
        if (--until_flip == 0) {
            spin = !spin;
            until_flip = kFlipEvery;
        }
        return out;
    }
};

struct FlowTruth {
    double ref_srtt_ms = 0.0;
    bool candidate = false;
};

/// Float-EWMA reference per flow — the idealized observer's answer (the
/// differential suite proves FlowMonitor matches this path exactly).
std::vector<FlowTruth> reference_pass(std::uint64_t seed, std::uint64_t flows,
                                      std::uint64_t packets_per_flow) {
    std::vector<FlowTruth> truth(flows);
    FlowStream stream;
    for (std::uint64_t i = 0; i < flows; ++i) {
        stream.init(seed, i);
        bool have_value = false, value = false, saw_zero = false, saw_one = false;
        std::int64_t last_edge_ns = -1;
        double srtt_ms = 0.0;
        bool have_srtt = false;
        for (std::uint64_t p = 0; p < packets_per_flow; ++p) {
            const auto [t, spin] = stream.next();
            (spin ? saw_one : saw_zero) = true;
            if (!have_value) {
                have_value = true;
                value = spin;
                continue;
            }
            if (spin == value) continue;
            value = spin;
            if (last_edge_ns < 0) {
                last_edge_ns = t;
                continue;
            }
            const double sample_ms =
                static_cast<double>(t - last_edge_ns) / 1e6;
            last_edge_ns = t;
            srtt_ms = have_srtt ? srtt_ms + (sample_ms - srtt_ms) / 8.0 : sample_ms;
            have_srtt = true;
        }
        truth[i].ref_srtt_ms = srtt_ms;
        truth[i].candidate = saw_zero && saw_one && have_srtt;
    }
    return truth;
}

/// Concurrency window of the synthetic interleave: packets mix across this
/// many live flows at a time; earlier cohorts are dead weight the table must
/// shed (or drown under, for drop-new). This is the regime the paper's
/// follow-up hardware work faces: total flows per epoch >> concurrent flows.
constexpr std::uint64_t kWindow = 8192;

/// Feeds the interleaved universe through one ConstrainedMonitor and scores
/// it against the reference. Flows run in sequential cohorts of kWindow;
/// within a cohort, each round visits every member once in a per-round-
/// permuted order — realistic mixing without a 1M-entry heap.
void synthetic_row(Row& row, std::uint64_t seed, std::uint64_t packets_per_flow,
                   const std::vector<FlowTruth>& truth) {
    const std::uint64_t flows = row.flows;  // power of two by construction
    const std::uint64_t window = flows < kWindow ? flows : kWindow;
    const std::uint64_t wmask = window - 1;
    constexpr std::uint64_t kStride = 0x9e3779b97f4a7c15ULL;  // odd: bijective

    core::ConstrainedConfig config;
    config.log2_slots = row.log2_slots;
    config.eviction = row.eviction;
    config.sample_every = row.sample_every;
    // A live flow is revisited every `window` processed packets; a resident
    // quiet for several full rounds is almost certainly a dead cohort's.
    config.lru_idle_packets = 8 * window;
    core::ConstrainedMonitor monitor{config};

    std::vector<FlowStream> streams(window);
    std::uint64_t candidates = 0, measured = 0, within = 0;
    double err_sum = 0.0;
    bench::Stopwatch watch;
    std::uint8_t datagram[10] = {};
    for (std::uint64_t cohort = 0; cohort * window < flows; ++cohort) {
        const std::uint64_t base = cohort * window;
        for (std::uint64_t m = 0; m < window; ++m) streams[m].init(seed, base + m);
        for (std::uint64_t p = 0; p < packets_per_flow; ++p) {
            for (std::uint64_t j = 0; j < window; ++j) {
                const std::uint64_t m =
                    (j * kStride + p * 0x85ebca77c2b2ae63ULL) & wmask;
                const auto [t, spin] = streams[m].next();
                const std::uint64_t key = base + m + 1;  // DCID = flow index
                datagram[0] =
                    static_cast<std::uint8_t>(0x40 | (spin ? 0x20 : 0x00));
                for (unsigned b = 0; b < 8; ++b) {
                    datagram[1 + b] =
                        static_cast<std::uint8_t>(key >> (8 * (7 - b)));
                }
                monitor.on_datagram(util::TimePoint::from_nanos(t),
                                    bytes::ConstByteSpan{datagram, sizeof datagram});
            }
        }
        // Harvest this cohort before the next one contends for its slots:
        // a flow's stats are final once its cohort ends.
        for (std::uint64_t m = 0; m < window; ++m) {
            const std::uint64_t i = base + m;
            if (!truth[i].candidate) continue;
            ++candidates;
            const auto stats = monitor.find_key(i + 1);
            if (!stats || !stats->has_estimate || !stats->spin_candidate()) continue;
            ++measured;
            const double err = std::fabs(stats->srtt_ms() - truth[i].ref_srtt_ms);
            err_sum += err;
            if (err <= 25.0) ++within;
        }
    }
    const double wall = watch.seconds();

    row.candidates = candidates;
    row.measured = measured;
    row.coverage = candidates > 0 ? static_cast<double>(measured) /
                                        static_cast<double>(candidates)
                                  : 0.0;
    row.mean_abs_err_ms = measured > 0 ? err_sum / static_cast<double>(measured) : 0.0;
    row.within_25ms_share =
        measured > 0 ? static_cast<double>(within) / static_cast<double>(measured) : 0.0;
    const double total_packets =
        static_cast<double>(flows) * static_cast<double>(packets_per_flow);
    row.packets_per_sec = wall > 0.0 ? total_packets / wall : 0.0;
    const auto& c = monitor.counters();
    row.tracked = c.tracked;
    row.untracked = c.untracked;
    row.evictions = c.evictions;
    row.sampled_out = c.sampled_out;
    row.active_slots = c.active_slots;
}

// --- Campaign replay ---------------------------------------------------------

Row campaign_row(const std::string& id, const analysis::ObserverRunSummary& s,
                 const core::ConstrainedConfig* config, double wall_seconds,
                 std::uint64_t datagrams) {
    Row row;
    row.id = id;
    if (config != nullptr) {
        row.log2_slots = config->log2_slots;
        row.eviction = config->eviction;
        row.sample_every = config->sample_every;
    }
    row.flows = s.connections;
    row.candidates = s.candidates;
    row.measured = s.measured;
    row.coverage = s.coverage;
    row.mean_abs_err_ms = s.mean_abs_err_ms;
    // Campaign rows score against the QUIC-stack baseline (the Fig. 3 error
    // definition) rather than the synthetic float reference.
    row.within_25ms_share =
        s.comparable > 0 ? static_cast<double>(s.within_25ms) /
                               static_cast<double>(s.comparable)
                         : 0.0;
    row.packets_per_sec =
        wall_seconds > 0.0 ? static_cast<double>(datagrams) / wall_seconds : 0.0;
    row.tracked = s.table.tracked;
    row.untracked = s.table.untracked;
    row.evictions = s.table.evictions;
    row.sampled_out = s.table.sampled_out;
    row.active_slots = s.table.active_slots;
    return row;
}

// --- Output ------------------------------------------------------------------

std::string num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return std::string{buf};
}

std::string to_json(const std::vector<Row>& rows, std::uint64_t seed,
                    std::uint64_t packets_per_flow) {
    std::string out = "{\"schema\":\"spinscope-bench-observer-v1\"";
    out += ",\"seed\":" + std::to_string(seed);
    out += ",\"packets_per_flow\":" + std::to_string(packets_per_flow);
    out += ",\"rows\":{";
    bool first = true;
    for (const Row& row : rows) {
        if (!first) out += ",";
        first = false;
        out += "\"" + row.id + "\":{";
        out += "\"log2_slots\":" + std::to_string(row.log2_slots);
        out += ",\"eviction\":\"" + std::string{to_cstring(row.eviction)} + "\"";
        out += ",\"sample_every\":" + std::to_string(row.sample_every);
        out += ",\"flows\":" + std::to_string(row.flows);
        out += ",\"candidates\":" + std::to_string(row.candidates);
        out += ",\"measured\":" + std::to_string(row.measured);
        out += ",\"tracked\":" + std::to_string(row.tracked);
        out += ",\"untracked\":" + std::to_string(row.untracked);
        out += ",\"evictions\":" + std::to_string(row.evictions);
        out += ",\"sampled_out\":" + std::to_string(row.sampled_out);
        out += ",\"active_slots\":" + std::to_string(row.active_slots);
        out += ",\"metrics\":{\"coverage\":" + num(row.coverage);
        out += ",\"mean_abs_err_ms\":" + num(row.mean_abs_err_ms);
        out += ",\"within_25ms_share\":" + num(row.within_25ms_share);
        out += ",\"packets_per_sec\":" + num(row.packets_per_sec);
        out += "}}";
    }
    out += "}}\n";
    return out;
}

void print_row(const Row& row) {
    std::printf(
        "  %-28s slots=2^%-2u evict=%-6s 1/%-2u flows=%-8llu "
        "coverage=%6.2f%% err=%8.3f ms within25=%6.2f%% (%llu/%llu measured)\n",
        row.id.c_str(), row.log2_slots, to_cstring(row.eviction), row.sample_every,
        static_cast<unsigned long long>(row.flows), row.coverage * 100.0,
        row.mean_abs_err_ms, row.within_25ms_share * 100.0,
        static_cast<unsigned long long>(row.measured),
        static_cast<unsigned long long>(row.candidates));
}

}  // namespace

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv, /*default_count=*/20);
    bench::banner("Constrained observer — accuracy vs hardware budget", options);
    const std::uint64_t packets_per_flow = options.count;

    std::vector<Row> rows;

    // Section 1: campaign traces through the Fig. 3/4 accuracy pipeline.
    {
        bench::Stopwatch watch;
        web::Population population{{options.scale, options.seed}};
        scanner::Campaign campaign{population, {}};
        analysis::ObserverReplay replay;
        for (const auto& domain : population.domains()) {
            if (!domain.quic) continue;
            const auto scan = campaign.scan_domain(domain);
            for (const auto& trace : scan.connections) {
                if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
                replay.add(trace);
            }
        }
        const auto ideal = replay.run_idealized();
        core::ConstrainedConfig budget;
        budget.log2_slots = 16;
        budget.eviction = core::EvictionPolicy::lru;
        const auto constrained = replay.run_constrained(budget);
        const double wall = watch.seconds();
        const std::uint64_t datagrams = constrained.summary.table.offered;
        rows.push_back(campaign_row("campaign_idealized", ideal.summary, nullptr,
                                    wall, datagrams));
        rows.push_back(campaign_row("campaign_constrained_64k_lru",
                                    constrained.summary, &budget, wall, datagrams));
        std::printf("campaign replay: %zu connections, %llu wire datagrams\n",
                    replay.connection_count(),
                    static_cast<unsigned long long>(datagrams));
        std::printf("%s\n", constrained.aggregator.render_headlines().c_str());
    }

    // Section 2: synthetic sweep. Base rows at 256K flows cover the budget
    // axes; the roadmap row pushes ~1M flows through 64K slots.
    {
        using core::EvictionPolicy;
        const std::uint64_t base_flows = std::uint64_t{1} << 18;
        const std::uint64_t roadmap_flows = std::uint64_t{1} << 20;
        struct Spec {
            const char* id;
            unsigned log2_slots;
            EvictionPolicy eviction;
            std::uint32_t sample_every;
            std::uint64_t flows;
        };
        const Spec specs[] = {
            {"slots14_none", 14, EvictionPolicy::none, 1, base_flows},
            {"slots14_lru", 14, EvictionPolicy::lru, 1, base_flows},
            {"slots14_random", 14, EvictionPolicy::random, 1, base_flows},
            {"slots16_none", 16, EvictionPolicy::none, 1, base_flows},
            {"slots16_lru", 16, EvictionPolicy::lru, 1, base_flows},
            {"slots16_random", 16, EvictionPolicy::random, 1, base_flows},
            {"slots18_lru", 18, EvictionPolicy::lru, 1, base_flows},
            {"slots16_lru_sample2", 16, EvictionPolicy::lru, 2, base_flows},
            {"slots16_lru_sample8", 16, EvictionPolicy::lru, 8, base_flows},
            {"roadmap_1m_flows_64k_none", 16, EvictionPolicy::none, 1, roadmap_flows},
            {"roadmap_1m_flows_64k_slots", 16, EvictionPolicy::lru, 1, roadmap_flows},
        };

        const auto base_truth =
            reference_pass(options.seed, base_flows, packets_per_flow);
        const auto roadmap_truth =
            reference_pass(options.seed, roadmap_flows, packets_per_flow);
        std::printf("\nsynthetic sweep (%llu packets/flow):\n",
                    static_cast<unsigned long long>(packets_per_flow));
        for (const Spec& spec : specs) {
            Row row;
            row.id = spec.id;
            row.log2_slots = spec.log2_slots;
            row.eviction = spec.eviction;
            row.sample_every = spec.sample_every;
            row.flows = spec.flows;
            synthetic_row(row, options.seed, packets_per_flow,
                          spec.flows == base_flows ? base_truth : roadmap_truth);
            print_row(row);
            rows.push_back(row);
        }
    }

    // ROADMAP item 3's answer, spelled out.
    const Row* budget_row = nullptr;
    for (const Row& row : rows) {
        if (row.id == "roadmap_1m_flows_64k_slots") budget_row = &row;
    }
    if (budget_row != nullptr) {
        std::printf(
            "\nroadmap: 64K slots vs %llu flows -> %.1f%% coverage, "
            "%.2f ms mean |err|, %.1f%% of measured flows within 25 ms\n",
            static_cast<unsigned long long>(budget_row->flows),
            budget_row->coverage * 100.0, budget_row->mean_abs_err_ms,
            budget_row->within_25ms_share * 100.0);
    }

    if (!options.trajectory_path.empty()) {
        const std::string json = to_json(rows, options.seed, packets_per_flow);
        if (util::write_file_atomic(options.trajectory_path, json)) {
            std::printf("wrote %s (%zu rows)\n", options.trajectory_path.c_str(),
                        rows.size());
        } else {
            std::fprintf(stderr, "failed to write %s\n",
                         options.trajectory_path.c_str());
            return 1;
        }
    }
    return 0;
}
