// bench/bench_fig4.cpp
//
// Regenerates Figure 4 of the paper: the distribution of the mapped ratio
// between the per-connection means of spin-bit and QUIC-stack RTT estimates
// (divide by the smaller; negative = spin underestimates).
//
// Reproduction targets (Spin (R)): ~30.5 % of connections within +-25 %,
// ~36.0 % within a factor of 2, ~51.7 % overestimating by more than 3x.
// Grease series: ~46 % underestimate, ~62.5 % within a factor of 2.

#include <cstdio>

#include "analysis/accuracy.hpp"
#include "analysis/csv.hpp"
#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv, /*default_count=*/12);
    bench::banner("Figure 4 — mapped ratio of spin-vs-QUIC RTT", options);

    bench::Stopwatch watch;
    web::Population population{{options.scale, options.seed}};
    analysis::AccuracyAggregator aggregator;
    std::uint64_t connections = 0;
    const auto weeks = static_cast<unsigned>(options.count);
    for (unsigned sample = 0; sample < weeks; ++sample) {
        const int week = static_cast<int>(sample * 57 / (weeks > 1 ? weeks - 1 : 1));
        scanner::ScanOptions scan_options;
        scan_options.week = week;
        scanner::Campaign campaign{population, scan_options};
        for (const auto& domain : population.domains()) {
            if (!domain.quic || population.org_of(domain).spin_host_rate <= 0.0) continue;
            const auto scan = campaign.scan_domain(domain);
            for (const auto& trace : scan.connections) {
                if (trace.outcome != qlog::ConnectionOutcome::ok) continue;
                ++connections;
                aggregator.add(core::assess_connection(trace));
            }
        }
    }

    std::printf("%s\n", aggregator.render_ratio_figure().c_str());
    bench::write_csv(options, "fig4.csv", analysis::ratio_histogram_csv(aggregator));
    std::printf("%s\n", aggregator.render_headlines().c_str());
    std::printf("corpus: %llu QUIC connections in %.1f s\n",
                static_cast<unsigned long long>(connections), watch.seconds());
    return 0;
}
