// bench/progress.hpp
//
// Live campaign progress line for the table/figure harnesses, driven by
// Campaign::set_progress (merge-thread callbacks, monotonic stats snapshots):
// completion, scan rate, ETA, resident set, quarantine count and journal
// durability lag. Written to stderr with carriage-return refresh so piped
// stdout (tables, CSV paths) stays clean.

#pragma once

#include <cstdio>

#include "scanner/campaign.hpp"
#include "telemetry/resource.hpp"

namespace spinscope::bench {

class ProgressReporter {
public:
    /// `total_domains` sizes the ETA (Campaign::domain_count()).
    explicit ProgressReporter(std::size_t total_domains, std::FILE* out = stderr)
        : total_{total_domains}, out_{out} {}

    /// One progress callback: overwrite the live line in place.
    void report(const scanner::CampaignStats& stats) {
        const double done = total_ > 0 ? static_cast<double>(stats.domains_scanned) /
                                             static_cast<double>(total_)
                                       : 0.0;
        const double rate = stats.domains_per_sec();
        const double remaining =
            total_ > stats.domains_scanned
                ? static_cast<double>(total_ - stats.domains_scanned)
                : 0.0;
        const double eta = rate > 0.0 ? remaining / rate : 0.0;
        const double rss_mb =
            static_cast<double>(telemetry::current_rss_bytes()) / (1024.0 * 1024.0);
        std::fprintf(out_,
                     "\r[%5.1f%%] %llu/%llu domains | %.0f dom/s | ETA %.1fs | "
                     "RSS %.0f MB | quarantined %llu | journal lag %.1f KB",
                     done * 100.0,
                     static_cast<unsigned long long>(stats.domains_scanned),
                     static_cast<unsigned long long>(total_), rate, eta, rss_mb,
                     static_cast<unsigned long long>(stats.domains_quarantined),
                     static_cast<double>(stats.journal_open_bytes) / 1024.0);
        std::fflush(out_);
        dirty_ = true;
    }

    /// Terminates the live line after the run (no-op if report never fired).
    void finish(const scanner::CampaignStats& stats) {
        if (!dirty_) return;
        report(stats);
        std::fputc('\n', out_);
        std::fflush(out_);
        dirty_ = false;
    }

private:
    std::size_t total_;
    std::FILE* out_;
    bool dirty_ = false;
};

}  // namespace spinscope::bench
