// bench/bench_table4.cpp
//
// Regenerates Table 4 of the paper: IPv6 overview for CW 20, 2023. The
// reproduction targets: far more QUIC-capable IPv6 hosts for CZDS (per-
// domain v6 addresses at the shared hosters), spin support >60 % of those
// hosts, but markedly lower toplist spin support than over IPv4.

#include <cstdio>

#include "analysis/adoption.hpp"
#include "bench/bench_common.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

using namespace spinscope;

int main(int argc, char** argv) {
    const auto options = bench::parse_options(argc, argv);
    bench::banner("Table 4 — IPv6 overview (CW 20, 2023)", options);

    bench::Stopwatch watch;
    // Streaming population (DESIGN.md §15): no resident domain vector.
    web::PopulationModel model{{options.scale, options.seed}};
    scanner::ScanOptions scan_options;
    scan_options.ipv6 = true;
    scan_options.week = 57;
    scan_options.threads = options.threads;
    scan_options.journal_dir = options.journal_dir;
    scanner::Campaign campaign{model, scan_options};

    analysis::AdoptionAggregator aggregator{model, /*ipv6=*/true};
    bench::run_campaign(options, campaign,
                        [&](const web::Domain& domain, scanner::DomainScan&& scan) {
                            aggregator.add(domain, scan);
                        });

    std::printf("%s\n", aggregator.render_overview_table().c_str());
    std::printf("paper (1:1 scale):\n"
                "  Toplists     #Domains 2 732 702 -> 569 516 -> 368 331 -> 2.3 %%\n"
                "               #IPs                   166 127 ->  94 533 -> 8.3 %%\n"
                "  CZDS         #Domains 216 520 521 -> 21 467 551 -> 9 096 258 -> 8.2 %%\n"
                "               #IPs                    2 115 215 -> 1 180 320 -> 62.6 %%\n"
                "  com/net/org  #Domains 183 047 638 -> 17 027 333 -> 6 626 316 -> 10.2 %%\n"
                "               #IPs                    1 853 223 -> 1 041 518 -> 63.6 %%\n");
    std::printf("\ncompleted in %.1f s\n", watch.seconds());
    return 0;
}
