// bench/bench_faults.cpp
//
// Microbenchmarks of the fault-injection layer. The headline number is the
// no-plan link send path: attaching nothing must cost nothing (one optional
// check), so fault support never taxes the calibrated fault-free campaigns.

#include <benchmark/benchmark.h>

#include "faults/faults.hpp"
#include "faults/retry_policy.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"

namespace {

using namespace spinscope;

constexpr std::size_t kBatch = 1024;

faults::FaultPlan active_plan() {
    faults::FaultPlan plan;
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.01;
    plan.burst_loss.p_bad_to_good = 0.25;
    plan.burst_loss.loss_bad = 0.6;
    plan.duplicate_probability = 0.01;
    return plan;
}

// mode 0: no injector; 1: attached-but-empty plan; 2: GE + duplication.
void link_send_batch(benchmark::State& state, int mode) {
    std::size_t delivered = 0;
    for (auto _ : state) {
        netsim::Simulator sim;
        netsim::LinkConfig config;
        config.base_delay = util::Duration::micros(100);
        config.jitter_scale = util::Duration::micros(10);
        netsim::Link link{sim, config, util::Rng{1}};
        if (mode == 1) link.attach_faults(faults::FaultPlan{}, util::Rng{2});
        if (mode == 2) link.attach_faults(active_plan(), util::Rng{2});
        link.set_receiver([&delivered](spinscope::bytes::ConstByteSpan) { ++delivered; });
        const netsim::Datagram datagram(1200, 0xab);
        for (std::size_t i = 0; i < kBatch; ++i) link.send(datagram.clone());
        sim.run();
        benchmark::DoNotOptimize(link.stats().delivered);
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBatch));
}

void BM_LinkSendNoFaultPlan(benchmark::State& state) { link_send_batch(state, 0); }
BENCHMARK(BM_LinkSendNoFaultPlan);

void BM_LinkSendEmptyFaultPlan(benchmark::State& state) { link_send_batch(state, 1); }
BENCHMARK(BM_LinkSendEmptyFaultPlan);

void BM_LinkSendActiveFaultPlan(benchmark::State& state) { link_send_batch(state, 2); }
BENCHMARK(BM_LinkSendActiveFaultPlan);

void BM_FaultInjectorVerdict(benchmark::State& state) {
    faults::FaultInjector injector{active_plan(), util::Rng{3}};
    std::int64_t t = 0;
    for (auto _ : state) {
        const auto verdict = injector.on_send(util::TimePoint::from_nanos(t));
        benchmark::DoNotOptimize(verdict.drop);
        t += 1000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultInjectorVerdict);

void BM_RetryBackoffSchedule(benchmark::State& state) {
    faults::RetryPolicy policy;
    policy.max_attempts = 4;
    util::Rng rng{4};
    for (auto _ : state) {
        for (int k = 1; k < policy.max_attempts; ++k) {
            benchmark::DoNotOptimize(policy.backoff_delay(k, rng));
        }
    }
    state.SetItemsProcessed(state.iterations() * (policy.max_attempts - 1));
}
BENCHMARK(BM_RetryBackoffSchedule);

}  // namespace

BENCHMARK_MAIN();
