// bench/bench_packet_path.cpp
//
// Zero-copy packet-path microbenchmarks: encode -> link -> deliver -> decode
// throughput and, more importantly, heap allocations per unit of work. The
// binary links telemetry/alloc_interpose.hpp (the shared operator new/delete
// probe this file's private interposition was promoted into), so every
// benchmark reports allocs_per_* counters straight into the standard
// google-benchmark JSON (--benchmark_out). Comparing the pooled and unpooled
// variants shows what the bytes::BufferPool datagram path saves; the
// per-domain numbers are the ones quoted against the pre-refactor baseline.
//
// Beyond the google-benchmark mode, `--trajectory=FILE` runs a fixed-size
// scan-domain measurement and writes the BENCH_packet_path.json perf
// snapshot (see bench/trajectory.hpp) instead of the benchmark suite.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/trajectory.hpp"
#include "bytes/bytes.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "quic/frame.hpp"
#include "quic/packet.hpp"
#include "scanner/campaign.hpp"
#include "telemetry/alloc_interpose.hpp"
#include "web/population.hpp"

namespace {

using namespace spinscope;
using telemetry::AllocSnapshot;

// ---------------------------------------------------------------------------
// Tight codec loop: one 1-RTT packet encoded into a (pooled) datagram,
// pushed through a link, decoded at delivery.

void BM_EncodeDeliverDecode(benchmark::State& state) {
    const bool pooled = state.range(0) != 0;
    netsim::Simulator sim;
    netsim::LinkConfig config;
    config.base_delay = util::Duration::micros(50);
    netsim::Link link{sim, config, util::Rng{1}};
    bytes::BufferPool pool;

    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(0x5c0);
    std::vector<quic::Frame> frames;
    quic::StreamFrame stream;
    stream.stream_id = 0;
    stream.data.assign(1000, 0xab);
    frames.emplace_back(stream);

    std::size_t decoded_frames = 0;
    link.set_receiver([&decoded_frames](bytes::ConstByteSpan dg) {
        const auto packet = quic::decode_packet(dg, 8, quic::kInvalidPacketNumber);
        if (!packet) return;
        const auto fr = quic::decode_frames(packet->payload, 3);
        if (fr) decoded_frames += fr->size();
    });

    quic::PacketNumber pn = 0;
    const AllocSnapshot before;
    for (auto _ : state) {
        netsim::Datagram wire = pooled ? pool.acquire(1500) : netsim::Datagram{};
        header.packet_number = pn++;
        quic::Writer w{wire};
        quic::encode_short_header(w, header, quic::kInvalidPacketNumber);
        quic::encode_frames(w, frames, 3);
        link.send(std::move(wire));
        sim.run();
    }
    benchmark::DoNotOptimize(decoded_frames);
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_packet"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_packet"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EncodeDeliverDecode)->Arg(0)->Arg(1)->ArgNames({"pooled"});

// ---------------------------------------------------------------------------
// Full QUIC connection exchange, pooled vs unpooled datagram path.

void BM_ConnectionExchange(benchmark::State& state) {
    const bool pooled = state.range(0) != 0;
    util::Rng rng{7};
    const AllocSnapshot before;
    for (auto _ : state) {
        bytes::BufferPool pool;
        bytes::BufferPool* pool_ptr = pooled ? &pool : nullptr;
        netsim::Simulator sim;
        netsim::LinkConfig link;
        link.base_delay = util::Duration::millis(15);
        netsim::Path path{sim, link, link, rng};
        quic::ConnectionConfig ccfg;
        ccfg.role = quic::Role::client;
        quic::Connection client{sim, ccfg, rng.fork(1),
                                [&path](netsim::Datagram dg) {
                                    path.forward_link().send(std::move(dg));
                                },
                                nullptr, pool_ptr};
        quic::ConnectionConfig scfg;
        scfg.role = quic::Role::server;
        quic::Connection server{sim, scfg, rng.fork(2),
                                [&path](netsim::Datagram dg) {
                                    path.return_link().send(std::move(dg));
                                },
                                nullptr, pool_ptr};
        path.forward_link().set_receiver(
            [&server](bytes::ConstByteSpan dg) { server.on_datagram(dg); });
        path.return_link().set_receiver(
            [&client](bytes::ConstByteSpan dg) { client.on_datagram(dg); });
        server.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            server.send_stream(0, std::vector<std::uint8_t>(30'000, 1), true);
        };
        client.on_handshake_complete = [&] {
            client.send_stream(0, std::vector<std::uint8_t>(200, 2), true);
        };
        client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            client.close(0, "done");
        };
        client.connect();
        sim.run_until(util::TimePoint::origin() + util::Duration::seconds(30));
        benchmark::DoNotOptimize(client.counters().packets_received);
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_connection"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_connection"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_ConnectionExchange)->Arg(0)->Arg(1)->ArgNames({"pooled"});

// ---------------------------------------------------------------------------
// Whole scanned domain (resolution, handshake, request, response, qlog),
// the unit the acceptance criterion is stated in.

void BM_ScanDomain(benchmark::State& state) {
    web::Population population{{20000.0, 20230520}};
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population, options};
    std::vector<const web::Domain*> targets;
    for (const auto& d : population.domains()) {
        if (d.quic) targets.push_back(&d);
    }
    std::size_t next = 0;
    const AllocSnapshot before;
    for (auto _ : state) {
        const auto scan = campaign.scan_domain(*targets[next]);
        benchmark::DoNotOptimize(scan.connections.size());
        next = (next + 1) % targets.size();
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_domain"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_domain"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanDomain);

// ---------------------------------------------------------------------------
// Perf-trajectory mode: a fixed-count scan-domain loop (same workload as
// BM_ScanDomain, fixed iterations instead of benchmark's adaptive search)
// measured into the committed BENCH_packet_path.json snapshot.

int run_trajectory(const std::string& path, std::uint64_t count) {
    web::Population population{{20000.0, 20230520}};
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population, options};
    std::vector<const web::Domain*> targets;
    for (const auto& d : population.domains()) {
        if (d.quic) targets.push_back(&d);
    }
    if (targets.empty()) {
        std::fprintf(stderr, "trajectory: population has no QUIC targets\n");
        return 1;
    }

    const AllocSnapshot before;
    const auto start = std::chrono::steady_clock::now();
    std::size_t next = 0;
    std::size_t connections = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto scan = campaign.scan_domain(*targets[next]);
        connections += scan.connections.size();
        next = (next + 1) % targets.size();
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const auto trajectory =
        bench::measure_trajectory("packet_path", count, wall, before);
    std::printf("trajectory: %llu domains, %zu connections in %.2f s\n",
                static_cast<unsigned long long>(count), connections, wall);
    return bench::write_trajectory_file(path, trajectory) ? 0 : 1;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off --trajectory[=FILE] and
// --trajectory_count=N before google-benchmark sees the argv (it rejects
// unknown flags), then either run the trajectory measurement or fall through
// to the normal benchmark suite.
int main(int argc, char** argv) {
    std::string trajectory_path;
    std::uint64_t trajectory_count = 192;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trajectory=", 13) == 0) {
            trajectory_path = argv[i] + 13;
        } else if (std::strncmp(argv[i], "--trajectory_count=", 19) == 0) {
            trajectory_count = std::strtoull(argv[i] + 19, nullptr, 10);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;

    if (!trajectory_path.empty()) {
        return run_trajectory(trajectory_path, trajectory_count);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
