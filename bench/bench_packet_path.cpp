// bench/bench_packet_path.cpp
//
// Zero-copy packet-path microbenchmarks: encode -> link -> deliver -> decode
// throughput and, more importantly, heap allocations per unit of work. The
// binary interposes global operator new/delete so every benchmark reports
// allocs_per_* counters straight into the standard google-benchmark JSON
// (--benchmark_out). Comparing the pooled and unpooled variants shows what
// the bytes::BufferPool datagram path saves; the per-domain numbers are the
// ones quoted against the pre-refactor baseline.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bytes/bytes.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "quic/frame.hpp"
#include "quic/packet.hpp"
#include "scanner/campaign.hpp"
#include "web/population.hpp"

namespace {

// ---------------------------------------------------------------------------
// Allocation interposition

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

struct AllocSnapshot {
    std::uint64_t count = g_alloc_count.load(std::memory_order_relaxed);
    std::uint64_t bytes = g_alloc_bytes.load(std::memory_order_relaxed);

    [[nodiscard]] std::uint64_t count_since() const {
        return g_alloc_count.load(std::memory_order_relaxed) - count;
    }
    [[nodiscard]] std::uint64_t bytes_since() const {
        return g_alloc_bytes.load(std::memory_order_relaxed) - bytes;
    }
};

}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace spinscope;

// ---------------------------------------------------------------------------
// Tight codec loop: one 1-RTT packet encoded into a (pooled) datagram,
// pushed through a link, decoded at delivery.

void BM_EncodeDeliverDecode(benchmark::State& state) {
    const bool pooled = state.range(0) != 0;
    netsim::Simulator sim;
    netsim::LinkConfig config;
    config.base_delay = util::Duration::micros(50);
    netsim::Link link{sim, config, util::Rng{1}};
    bytes::BufferPool pool;

    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(0x5c0);
    std::vector<quic::Frame> frames;
    quic::StreamFrame stream;
    stream.stream_id = 0;
    stream.data.assign(1000, 0xab);
    frames.emplace_back(stream);

    std::size_t decoded_frames = 0;
    link.set_receiver([&decoded_frames](bytes::ConstByteSpan dg) {
        const auto packet = quic::decode_packet(dg, 8, quic::kInvalidPacketNumber);
        if (!packet) return;
        const auto fr = quic::decode_frames(packet->payload, 3);
        if (fr) decoded_frames += fr->size();
    });

    quic::PacketNumber pn = 0;
    const AllocSnapshot before;
    for (auto _ : state) {
        netsim::Datagram wire = pooled ? pool.acquire(1500) : netsim::Datagram{};
        header.packet_number = pn++;
        quic::Writer w{wire};
        quic::encode_short_header(w, header, quic::kInvalidPacketNumber);
        quic::encode_frames(w, frames, 3);
        link.send(std::move(wire));
        sim.run();
    }
    benchmark::DoNotOptimize(decoded_frames);
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_packet"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_packet"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EncodeDeliverDecode)->Arg(0)->Arg(1)->ArgNames({"pooled"});

// ---------------------------------------------------------------------------
// Full QUIC connection exchange, pooled vs unpooled datagram path.

void BM_ConnectionExchange(benchmark::State& state) {
    const bool pooled = state.range(0) != 0;
    util::Rng rng{7};
    const AllocSnapshot before;
    for (auto _ : state) {
        bytes::BufferPool pool;
        bytes::BufferPool* pool_ptr = pooled ? &pool : nullptr;
        netsim::Simulator sim;
        netsim::LinkConfig link;
        link.base_delay = util::Duration::millis(15);
        netsim::Path path{sim, link, link, rng};
        quic::ConnectionConfig ccfg;
        ccfg.role = quic::Role::client;
        quic::Connection client{sim, ccfg, rng.fork(1),
                                [&path](netsim::Datagram dg) {
                                    path.forward_link().send(std::move(dg));
                                },
                                nullptr, pool_ptr};
        quic::ConnectionConfig scfg;
        scfg.role = quic::Role::server;
        quic::Connection server{sim, scfg, rng.fork(2),
                                [&path](netsim::Datagram dg) {
                                    path.return_link().send(std::move(dg));
                                },
                                nullptr, pool_ptr};
        path.forward_link().set_receiver(
            [&server](bytes::ConstByteSpan dg) { server.on_datagram(dg); });
        path.return_link().set_receiver(
            [&client](bytes::ConstByteSpan dg) { client.on_datagram(dg); });
        server.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            server.send_stream(0, std::vector<std::uint8_t>(30'000, 1), true);
        };
        client.on_handshake_complete = [&] {
            client.send_stream(0, std::vector<std::uint8_t>(200, 2), true);
        };
        client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            client.close(0, "done");
        };
        client.connect();
        sim.run_until(util::TimePoint::origin() + util::Duration::seconds(30));
        benchmark::DoNotOptimize(client.counters().packets_received);
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_connection"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_connection"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 30'000);
}
BENCHMARK(BM_ConnectionExchange)->Arg(0)->Arg(1)->ArgNames({"pooled"});

// ---------------------------------------------------------------------------
// Whole scanned domain (resolution, handshake, request, response, qlog),
// the unit the acceptance criterion is stated in.

void BM_ScanDomain(benchmark::State& state) {
    web::Population population{{20000.0, 20230520}};
    scanner::ScanOptions options;
    options.week = 57;
    scanner::Campaign campaign{population, options};
    std::vector<const web::Domain*> targets;
    for (const auto& d : population.domains()) {
        if (d.quic) targets.push_back(&d);
    }
    std::size_t next = 0;
    const AllocSnapshot before;
    for (auto _ : state) {
        const auto scan = campaign.scan_domain(*targets[next]);
        benchmark::DoNotOptimize(scan.connections.size());
        next = (next + 1) % targets.size();
    }
    const auto iters = static_cast<double>(state.iterations());
    state.counters["allocs_per_domain"] =
        benchmark::Counter(static_cast<double>(before.count_since()) / iters);
    state.counters["alloc_bytes_per_domain"] =
        benchmark::Counter(static_cast<double>(before.bytes_since()) / iters);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScanDomain);

}  // namespace

BENCHMARK_MAIN();
