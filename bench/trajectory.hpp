// bench/trajectory.hpp
//
// Committed perf trajectory: the repo-root BENCH_*.json snapshots
// (BENCH_packet_path.json, BENCH_scale.json) that pin the pipeline's
// throughput and footprint — domains/sec, peak RSS, allocations/domain and
// allocated bytes/domain. scripts/bench_check.py compares a fresh
// measurement against the committed baseline and fails CI on regression;
// scripts/ci.sh's bench lane regenerates them (REGEN=1 to re-baseline).

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/resource.hpp"
#include "util/atomic_file.hpp"

namespace spinscope::bench {

/// One perf-trajectory snapshot. The four `metrics` fields are the committed
/// surface bench_check.py guards; the rest is measurement context.
struct Trajectory {
    std::string bench;          ///< "packet_path", "scale", ...
    std::uint64_t domains = 0;  ///< work items measured
    double wall_seconds = 0.0;
    /// True when the binary linked telemetry/alloc_interpose.hpp — without
    /// it the allocs/bytes fields are 0 and bench_check.py skips them.
    bool alloc_probe = false;
    double domains_per_sec = 0.0;
    std::uint64_t peak_rss_bytes = 0;
    double allocs_per_domain = 0.0;
    double alloc_bytes_per_domain = 0.0;
    /// Multi-process context (--procs runs, DESIGN.md §13): worker process
    /// count and the high-water worker RSS the supervisor observed over the
    /// heartbeat channel. Both stay 0 for classic single-process runs;
    /// bench_check.py skips a zero/absent peak_worker_rss_bytes baseline.
    unsigned procs = 0;
    std::uint64_t peak_worker_rss_bytes = 0;
    /// Population downscale (1:N) the row was measured at; 0 for benches
    /// without a population (micro benches).
    double scale = 0.0;
};

/// Builds a snapshot from one measured section: `before` captured at section
/// start, `domains` items completed in `wall_seconds`.
inline Trajectory measure_trajectory(std::string bench, std::uint64_t domains,
                                     double wall_seconds,
                                     const telemetry::AllocSnapshot& before) {
    Trajectory t;
    t.bench = std::move(bench);
    t.domains = domains;
    t.wall_seconds = wall_seconds;
    t.domains_per_sec =
        wall_seconds > 0.0 ? static_cast<double>(domains) / wall_seconds : 0.0;
    t.peak_rss_bytes = telemetry::peak_rss_bytes();
    t.alloc_probe = telemetry::alloc::active();
    if (t.alloc_probe && domains > 0) {
        t.allocs_per_domain =
            static_cast<double>(before.count_since()) / static_cast<double>(domains);
        t.alloc_bytes_per_domain =
            static_cast<double>(before.bytes_since()) / static_cast<double>(domains);
    }
    return t;
}

namespace detail {
inline std::string trajectory_num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return std::string{buf};
}

/// The schema-less field body shared by the single-row trajectory file and
/// the scale-sweep row array.
inline std::string trajectory_fields(const Trajectory& t) {
    std::string out = "\"bench\":\"";
    out += t.bench;  // bench names are identifiers, no escaping needed
    out += "\",\"domains\":" + std::to_string(t.domains);
    out += ",\"wall_seconds\":" + trajectory_num(t.wall_seconds);
    out += ",\"alloc_probe\":" + std::string{t.alloc_probe ? "1" : "0"};
    out += ",\"procs\":" + std::to_string(t.procs);
    out += ",\"scale\":" + trajectory_num(t.scale);
    out += ",\"metrics\":{\"domains_per_sec\":" + trajectory_num(t.domains_per_sec);
    out += ",\"peak_rss_bytes\":" + std::to_string(t.peak_rss_bytes);
    out += ",\"allocs_per_domain\":" + trajectory_num(t.allocs_per_domain);
    out += ",\"alloc_bytes_per_domain\":" + trajectory_num(t.alloc_bytes_per_domain);
    out += ",\"peak_worker_rss_bytes\":" + std::to_string(t.peak_worker_rss_bytes);
    out += "}";
    return out;
}
}  // namespace detail

inline std::string to_json(const Trajectory& t) {
    return "{\"schema\":\"spinscope-bench-trajectory-v1\"," + detail::trajectory_fields(t) +
           "}";
}

/// Scale-sweep row family (spinscope-bench-scale-v1): one trajectory row per
/// population scale, measured back to back inside one process from the
/// largest downscale (fewest domains) to the smallest. peak_rss_bytes is the
/// process high-water mark and therefore monotone across rows — if campaign
/// state grew with the domain count, later (bigger-universe) rows would push
/// it up, so "last row ≈ first row" is exactly the flat-RSS proof
/// bench_check.py gates.
inline std::string scale_sweep_to_json(const std::vector<Trajectory>& rows) {
    std::string out = "{\"schema\":\"spinscope-bench-scale-v1\",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ",";
        out += "{" + detail::trajectory_fields(rows[i]) + "}";
    }
    out += "]}";
    return out;
}

/// Writes the scale-sweep snapshot atomically and reports the path.
inline bool write_scale_sweep_file(const std::string& path,
                                   const std::vector<Trajectory>& rows) {
    if (util::write_file_atomic(path, scale_sweep_to_json(rows) + "\n")) {
        std::printf("wrote %s (%zu scale rows)\n", path.c_str(), rows.size());
        return true;
    }
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
}

/// Writes the snapshot atomically and reports the path.
inline bool write_trajectory_file(const std::string& path, const Trajectory& t) {
    if (util::write_file_atomic(path, to_json(t) + "\n")) {
        std::printf("wrote %s (%s: %.0f domains/sec, %.1f MB peak RSS)\n", path.c_str(),
                    t.bench.c_str(), t.domains_per_sec,
                    static_cast<double>(t.peak_rss_bytes) / (1024.0 * 1024.0));
        return true;
    }
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
}

}  // namespace spinscope::bench
