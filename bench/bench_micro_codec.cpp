// bench/bench_micro_codec.cpp
//
// google-benchmark microbenchmarks of the wire codecs and trackers — not a
// paper reproduction, but the performance floor of the measurement
// infrastructure (a passive observer must keep up with line rate).

#include <benchmark/benchmark.h>

#include <vector>

#include "qlog/trace.hpp"
#include "quic/ack_tracker.hpp"
#include "quic/frame.hpp"
#include "quic/packet.hpp"
#include "quic/rtt_estimator.hpp"
#include "quic/varint.hpp"
#include "util/rng.hpp"

namespace {

using namespace spinscope;

void BM_VarintEncode(benchmark::State& state) {
    const auto value = static_cast<std::uint64_t>(state.range(0));
    std::vector<std::uint8_t> out;
    out.reserve(16);
    for (auto _ : state) {
        out.clear();
        quic::encode_varint(out, value);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_VarintEncode)->Arg(37)->Arg(15293)->Arg(494878333)->Arg(1LL << 40);

void BM_VarintDecode(benchmark::State& state) {
    std::vector<std::uint8_t> wire;
    quic::encode_varint(wire, static_cast<std::uint64_t>(state.range(0)));
    for (auto _ : state) {
        auto decoded = quic::decode_varint(wire);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_VarintDecode)->Arg(37)->Arg(15293)->Arg(494878333)->Arg(1LL << 40);

void BM_ShortHeaderEncode(benchmark::State& state) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(0x1122334455667788ULL);
    header.packet_number = 123456;
    header.spin = true;
    const std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0xab);
    std::vector<std::uint8_t> wire;
    wire.reserve(1500);
    for (auto _ : state) {
        wire.clear();
        quic::encode_packet(wire, header, payload, 123400);
        benchmark::DoNotOptimize(wire.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ShortHeaderEncode)->Arg(64)->Arg(1200);

void BM_ShortHeaderDecode(benchmark::State& state) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(0x1122334455667788ULL);
    header.packet_number = 123456;
    const std::vector<std::uint8_t> payload(1200, 0x01);  // PADDING bytes
    std::vector<std::uint8_t> wire;
    quic::encode_packet(wire, header, payload, 123400);
    for (auto _ : state) {
        auto decoded = quic::decode_packet(wire, 8, 123455);
        benchmark::DoNotOptimize(decoded);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ShortHeaderDecode);

void BM_PeekShortHeader(benchmark::State& state) {
    quic::PacketHeader header;
    header.type = quic::PacketType::one_rtt;
    header.dcid = quic::ConnectionId::from_u64(7);
    header.spin = true;
    std::vector<std::uint8_t> wire;
    quic::encode_packet(wire, header, {}, quic::kInvalidPacketNumber);
    for (auto _ : state) {
        auto view = quic::peek_short_header(wire);
        benchmark::DoNotOptimize(view);
    }
}
BENCHMARK(BM_PeekShortHeader);

void BM_AckFrameRoundTrip(benchmark::State& state) {
    quic::AckFrame ack;
    std::uint64_t pn = 1'000'000;
    for (int i = 0; i < state.range(0); ++i) {
        ack.ranges.push_back(quic::AckRange{pn - 3, pn});
        pn -= 10;
    }
    std::vector<std::uint8_t> wire;
    for (auto _ : state) {
        wire.clear();
        quic::encode_frame(wire, quic::Frame{ack}, 3);
        auto decoded = quic::decode_frames(wire, 3);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_AckFrameRoundTrip)->Arg(1)->Arg(8)->Arg(32);

void BM_AckTrackerInsert(benchmark::State& state) {
    const bool with_holes = state.range(0) != 0;
    for (auto _ : state) {
        state.PauseTiming();
        quic::AckTracker tracker{{2, util::Duration::millis(25)}};
        state.ResumeTiming();
        for (quic::PacketNumber pn = 0; pn < 256; ++pn) {
            if (with_holes && pn % 7 == 3) continue;
            tracker.on_packet_received(pn, true, util::TimePoint::origin());
        }
        benchmark::DoNotOptimize(tracker.largest_received());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AckTrackerInsert)->Arg(0)->Arg(1);

void BM_RttEstimator(benchmark::State& state) {
    util::Rng rng{1};
    quic::RttEstimator rtt;
    for (auto _ : state) {
        rtt.add_sample(util::Duration::micros(30'000 + rng.uniform_i64(0, 5000)),
                       util::Duration::micros(rng.uniform_i64(0, 25'000)),
                       util::Duration::millis(25), true);
        benchmark::DoNotOptimize(rtt.smoothed_rtt());
    }
}
BENCHMARK(BM_RttEstimator);

void BM_QlogSerialize(benchmark::State& state) {
    qlog::Trace trace;
    trace.host = "www.example.com";
    trace.ip = "10.1.2.3";
    trace.outcome = qlog::ConnectionOutcome::ok;
    for (int i = 0; i < state.range(0); ++i) {
        trace.record_received({util::TimePoint::from_nanos(i * 1000),
                               quic::PacketType::one_rtt,
                               static_cast<quic::PacketNumber>(i), i % 2 == 0, 1200, true, 0});
    }
    for (auto _ : state) {
        auto text = qlog::to_jsonl(trace);
        benchmark::DoNotOptimize(text.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QlogSerialize)->Arg(50)->Arg(500);

void BM_QlogParse(benchmark::State& state) {
    qlog::Trace trace;
    trace.host = "www.example.com";
    trace.ip = "10.1.2.3";
    for (int i = 0; i < state.range(0); ++i) {
        trace.record_received({util::TimePoint::from_nanos(i * 1000),
                               quic::PacketType::one_rtt,
                               static_cast<quic::PacketNumber>(i), i % 2 == 0, 1200, true, 0});
    }
    const auto text = qlog::to_jsonl(trace);
    for (auto _ : state) {
        auto parsed = qlog::parse_jsonl(text);
        benchmark::DoNotOptimize(parsed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QlogParse)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
