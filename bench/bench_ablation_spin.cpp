// bench/bench_ablation_spin.cpp
//
// Ablation of the RFC 9000 §17.4 design decision that endpoints update the
// spin value only from the packet with the *highest packet number*
// (DESIGN.md §5.1). The alternative — naive arrival-order reflection —
// re-randomizes the wave whenever the incoming path reorders, injecting
// spurious edges that no observer-side heuristic can fully repair.
//
// The harness runs identical transfers with both reflection rules while the
// client->server (incoming-to-the-reflector) path reorders, and reports the
// spin-edge statistics a client-side observer sees.

#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/accuracy.hpp"
#include "core/observer.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "quic/connection.hpp"
#include "scanner/http3_mini.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

using namespace spinscope;

namespace {

struct Outcome {
    std::size_t connections = 0;
    std::size_t edges = 0;
    std::size_t short_samples = 0;  // < half the true RTT
    std::vector<double> mean_errors;
};

Outcome sweep(bool naive_reflection, double reorder_rate, std::size_t connections,
              std::uint64_t seed) {
    constexpr double kRttMs = 40.0;
    Outcome outcome;
    for (std::size_t c = 0; c < connections; ++c) {
        netsim::Simulator sim;
        util::Rng rng{seed + c * 104729};
        netsim::LinkConfig forward;
        forward.base_delay = util::Duration::from_ms(kRttMs / 2);
        forward.reorder_probability = reorder_rate;  // incoming path of the server
        // Delays past one RTT so a stale client packet (carrying the
        // previous spin value) arrives after newer ones — the case the
        // highest-PN rule exists for.
        forward.reorder_extra_min = util::Duration::from_ms(10.0);
        forward.reorder_extra_max = util::Duration::from_ms(70.0);
        netsim::LinkConfig ret;
        ret.base_delay = util::Duration::from_ms(kRttMs / 2);
        netsim::Path path{sim, forward, ret, rng};

        quic::SpinConfig spin{quic::SpinPolicy::spin, 0, quic::SpinPolicy::always_zero};
        spin.naive_reflection = naive_reflection;

        qlog::Trace trace;
        quic::ConnectionConfig ccfg;
        ccfg.role = quic::Role::client;
        ccfg.spin = spin;
        quic::Connection client{sim, ccfg, rng.fork(1),
                                [&path](netsim::Datagram dg) {
                                    path.forward_link().send(std::move(dg));
                                },
                                &trace};
        quic::ConnectionConfig scfg;
        scfg.role = quic::Role::server;
        scfg.spin = spin;
        quic::Connection server{sim, scfg, rng.fork(2), [&path](netsim::Datagram dg) {
                                    path.return_link().send(std::move(dg));
                                }};
        path.forward_link().set_receiver(
            [&server](spinscope::bytes::ConstByteSpan dg) { server.on_datagram(dg); });
        path.return_link().set_receiver(
            [&client](spinscope::bytes::ConstByteSpan dg) { client.on_datagram(dg); });
        server.on_stream_complete = [&](std::uint64_t id, std::vector<std::uint8_t>) {
            if (id == scanner::kRequestStream) {
                server.send_stream(id, scanner::build_body(120'000), true);
            }
        };
        client.on_handshake_complete = [&] {
            client.send_stream(scanner::kRequestStream, scanner::build_request("www.a"),
                               true);
            // Bulk upload keeps the server acking continuously, so a stale
            // reflected value is actually transmitted (otherwise the server
            // is silent between ack-clocked flights and the blip stays
            // invisible).
            client.send_stream(4, std::vector<std::uint8_t>(100'000, 3), true);
        };
        client.on_stream_complete = [&](std::uint64_t, std::vector<std::uint8_t>) {
            client.close(0, "done");
        };
        client.connect();
        sim.run_until(util::TimePoint::origin() + util::Duration::seconds(60));
        client.finalize_trace();

        const auto packets = core::spin_observations(trace);
        const auto result = core::measure_spin_rtt(packets, core::PacketOrder::received);
        ++outcome.connections;
        outcome.edges += result.edge_count;
        for (const double s : result.samples_ms) {
            if (s < kRttMs / 2) ++outcome.short_samples;
        }
        if (result.has_samples() && !trace.metrics.rtt_samples_ms.empty()) {
            double quic_mean = 0.0;
            for (const double s : trace.metrics.rtt_samples_ms) quic_mean += s;
            quic_mean /= static_cast<double>(trace.metrics.rtt_samples_ms.size());
            outcome.mean_errors.push_back(std::abs(result.mean_ms() - quic_mean) / quic_mean);
        }
    }
    return outcome;
}

}  // namespace

int main(int argc, char** argv) {
    auto options = bench::parse_options(argc, argv, /*default_count=*/200);
    bench::banner("Ablation — highest-PN spin reflection vs naive arrival order", options);
    const auto connections = static_cast<std::size_t>(options.count);

    bench::Stopwatch watch;
    util::TextTable table;
    table.add_row({"reflection", "reorder", "edges/conn", "short samples", "median error"});
    for (const double rate : {0.0, 0.01, 0.05}) {
        for (const bool naive : {false, true}) {
            const auto outcome = sweep(naive, rate, connections, options.seed);
            const auto median = util::quantile(outcome.mean_errors, 0.5);
            table.add_row({naive ? "naive (ablated)" : "highest-PN (RFC 9000)",
                           util::fixed(rate, 3),
                           util::fixed(static_cast<double>(outcome.edges) /
                                           static_cast<double>(outcome.connections),
                                       1),
                           std::to_string(outcome.short_samples),
                           median ? util::percent(*median) : "-"});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The RFC rule keeps the wave clean under incoming-path reordering; the\n"
                "naive rule multiplies edges and produces sub-RTT samples the moment the\n"
                "path reorders (why §17.4 specifies highest packet number).\n");
    std::printf("\ncompleted in %.1f s\n", watch.seconds());
    return 0;
}
